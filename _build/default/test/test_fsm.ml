(* Tests for the FSM substrate: model, KISS2 I/O, symbolic cover,
   encodings, encoded PLA. *)

open Logic

let check = Alcotest.(check bool)

let tiny =
  Fsm.create ~name:"tiny" ~num_inputs:1 ~num_outputs:1
    ~states:[| "a"; "b"; "c" |]
    ~transitions:
      [
        { Fsm.input = "0"; src = Some 0; dst = Some 0; output = "0" };
        { Fsm.input = "1"; src = Some 0; dst = Some 1; output = "0" };
        { Fsm.input = "0"; src = Some 1; dst = Some 2; output = "1" };
        { Fsm.input = "1"; src = Some 1; dst = Some 1; output = "-" };
        { Fsm.input = "-"; src = Some 2; dst = Some 0; output = "1" };
      ]
    ~reset:0 ()

let test_create_validation () =
  let tr input src dst output = { Fsm.input; src; dst; output } in
  Alcotest.check_raises "bad input width"
    (Invalid_argument "Fsm.create: input pattern \"00\" must have width 1") (fun () ->
      ignore
        (Fsm.create ~name:"x" ~num_inputs:1 ~num_outputs:1 ~states:[| "a" |]
           ~transitions:[ tr "00" (Some 0) (Some 0) "0" ]
           ()));
  Alcotest.check_raises "bad state index"
    (Invalid_argument "Fsm.create: next state index 3 out of range") (fun () ->
      ignore
        (Fsm.create ~name:"x" ~num_inputs:1 ~num_outputs:1 ~states:[| "a" |]
           ~transitions:[ tr "0" (Some 0) (Some 3) "0" ]
           ()));
  Alcotest.check_raises "duplicate state name"
    (Invalid_argument "Fsm.create: duplicate state name \"a\"") (fun () ->
      ignore
        (Fsm.create ~name:"x" ~num_inputs:1 ~num_outputs:1 ~states:[| "a"; "a" |]
           ~transitions:[] ()));
  Alcotest.check_raises "no states"
    (Invalid_argument "Fsm.create: a machine needs at least one state") (fun () ->
      ignore (Fsm.create ~name:"x" ~num_inputs:1 ~num_outputs:1 ~states:[||] ~transitions:[] ()))

let test_stats_and_lookup () =
  let s = Fsm.stats tiny in
  Alcotest.(check int) "inputs" 1 s.Fsm.stat_inputs;
  Alcotest.(check int) "outputs" 1 s.Fsm.stat_outputs;
  Alcotest.(check int) "states" 3 s.Fsm.stat_states;
  Alcotest.(check int) "products" 5 s.Fsm.stat_products;
  Alcotest.(check (option int)) "index of b" (Some 1) (Fsm.state_index tiny "b");
  Alcotest.(check (option int)) "index of zz" None (Fsm.state_index tiny "zz");
  Alcotest.(check int) "min code length" 2 (Fsm.min_code_length tiny)

let test_next_simulation () =
  (match Fsm.next tiny ~input:"1" ~src:0 with
  | Some (Some 1, "0") -> ()
  | _ -> Alcotest.fail "expected a -1-> b");
  (match Fsm.next tiny ~input:"0" ~src:2 with
  | Some (Some 0, "1") -> ()
  | _ -> Alcotest.fail "expected c -> a under '-'");
  check "unspecified is None" true (Fsm.next tiny ~input:"1" ~src:2 <> None)

let test_kiss_roundtrip () =
  let text = Kiss.to_string tiny in
  let m = Kiss.parse ~name:"tiny" text in
  Alcotest.(check int) "states" 3 (Fsm.num_states ~m);
  Alcotest.(check int) "rows" 5 (List.length m.Fsm.transitions);
  Alcotest.(check (option int)) "reset preserved" (Some 0) m.Fsm.reset;
  Alcotest.(check string) "second roundtrip is stable" text (Kiss.to_string m)

let test_kiss_errors () =
  let bad header = Printf.sprintf "%s\n0 a b 1\n.e\n" header in
  check "missing .i" true
    (try ignore (Kiss.parse ~name:"x" (bad ".o 1")); false with Kiss.Parse_error _ -> true);
  check "missing .o" true
    (try ignore (Kiss.parse ~name:"x" (bad ".i 1")); false with Kiss.Parse_error _ -> true);
  check "bad .p count" true
    (try
       ignore (Kiss.parse ~name:"x" ".i 1\n.o 1\n.p 2\n0 a b 1\n.e\n");
       false
     with Kiss.Parse_error _ -> true);
  check "unknown reset" true
    (try
       ignore (Kiss.parse ~name:"x" ".i 1\n.o 1\n.r zz\n0 a b 1\n.e\n");
       false
     with Kiss.Parse_error _ -> true);
  check "comments and blanks ok" true
    (let m = Kiss.parse ~name:"x" ".i 1\n.o 1\n# comment\n\n0 a b 1\n1 a a 0\n.e\n" in
     Fsm.num_states ~m = 2)

let test_kiss_star_and_dash () =
  let m = Kiss.parse ~name:"x" ".i 1\n.o 1\n0 * b 1\n1 b - 0\n.e\n" in
  (match m.Fsm.transitions with
  | [ t1; t2 ] ->
      check "star src" true (t1.Fsm.src = None);
      check "dash dst" true (t2.Fsm.dst = None)
  | _ -> Alcotest.fail "expected 2 rows")

(* --- symbolic cover ----------------------------------------------------- *)

let test_symbolic_structure () =
  let sym = Symbolic.of_fsm tiny in
  Alcotest.(check int) "3 states" 3 (Symbolic.num_states sym);
  (* Domain: 1 input var (2 parts), state var (3), output var (3 + 1). *)
  Alcotest.(check int) "vars" 3 (Domain.num_vars sym.Symbolic.dom);
  Alcotest.(check int) "state var size" 3 (Domain.size sym.Symbolic.dom sym.Symbolic.state_var);
  Alcotest.(check int) "output var size" 4 (Domain.size sym.Symbolic.dom sym.Symbolic.output_var);
  (* The on-set asserts something for every row with an asserted column. *)
  check "on-set nonempty" true (Cover.size sym.Symbolic.on > 0);
  (* Row (b,1): output '-' generates a dc cube. *)
  check "dc-set nonempty" true (Cover.size sym.Symbolic.dc > 0)

let test_symbolic_on_dc_disjointness () =
  (* Specified behaviour must not be contradicted: the on-set and dc-set
     may share cubes only through output '-' columns; the on-set must
     never intersect the *off* region. We verify on ⊆ on∪dc trivially and
     that minimization covers the on-set. *)
  let sym = Symbolic.of_fsm tiny in
  let m = Symbolic.minimize sym in
  check "minimized covers on" true (Cover.covers (Cover.union m sym.Symbolic.dc) sym.Symbolic.on);
  check "minimized within on+dc" true
    (Cover.covers (Cover.union sym.Symbolic.on sym.Symbolic.dc) m)

(* --- encodings ---------------------------------------------------------- *)

let test_encoding_validation () =
  Alcotest.check_raises "duplicate code" (Invalid_argument "Encoding.make: duplicate code")
    (fun () -> ignore (Encoding.make ~nbits:2 [| 1; 1 |]));
  Alcotest.check_raises "code out of range"
    (Invalid_argument "Encoding.make: code out of range") (fun () ->
      ignore (Encoding.make ~nbits:2 [| 4 |]));
  let e = Encoding.make ~nbits:3 [| 5; 0; 7 |] in
  Alcotest.(check int) "code 0" 5 (Encoding.code e 0);
  Alcotest.(check int) "bit 0 of code 5" 1 (Encoding.bit e 0 0);
  Alcotest.(check int) "bit 1 of code 5" 0 (Encoding.bit e 0 1);
  Alcotest.(check string) "code string msb first" "101" (Encoding.code_string e 0);
  Alcotest.(check (list int)) "used codes sorted" [ 0; 5; 7 ] (Encoding.used_codes e)

let test_one_hot () =
  let e = Encoding.one_hot 4 in
  Alcotest.(check int) "nbits" 4 e.Encoding.nbits;
  Alcotest.(check (list int)) "codes" [ 1; 2; 4; 8 ] (Encoding.used_codes e)

let test_random_encoding () =
  let rng = Random.State.make [| 5 |] in
  let e = Encoding.random rng ~num_states:7 ~nbits:3 in
  Alcotest.(check int) "7 distinct codes" 7 (List.length (Encoding.used_codes e));
  Alcotest.check_raises "too many states"
    (Invalid_argument "Encoding.random: not enough codes") (fun () ->
      ignore (Encoding.random rng ~num_states:9 ~nbits:3))

(* --- encoded PLA -------------------------------------------------------- *)

let test_area_formula () =
  let e = Encoding.one_hot 3 in
  (* tiny: 1 input, 1 output, encoded with 3 bits:
     area = (2*(1+3) + 3 + 1) * #cubes = 12 * #cubes *)
  Alcotest.(check int) "area model" 36 (Encoded.area ~machine:tiny ~encoding:e ~num_cubes:3)

let all_inputs n =
  List.init (1 lsl n) (fun v -> String.init n (fun i -> if v land (1 lsl i) <> 0 then '1' else '0'))

(* The encoded, minimized PLA must agree with the symbolic machine on
   every specified transition. *)
let check_equivalence m e =
  let enc = Encoded.build m e in
  let cover = Encoded.minimize enc in
  let ok = ref true in
  for s = 0 to Fsm.num_states ~m - 1 do
    List.iter
      (fun input ->
        match Fsm.next m ~input ~src:s with
        | None -> ()
        | Some (dst, out) ->
            let next_code, outputs = Encoded.eval enc cover ~input ~code:(Encoding.code e s) in
            (match dst with
            | Some d -> if next_code <> Encoding.code e d then ok := false
            | None -> ());
            String.iteri
              (fun j ch ->
                match ch with
                | '1' -> if not outputs.(j) then ok := false
                | '0' -> if outputs.(j) then ok := false
                | _ -> ())
              out)
      (all_inputs m.Fsm.num_inputs)
  done;
  !ok

let test_encoded_equivalence_tiny () =
  check "one-hot equivalent" true (check_equivalence tiny (Encoding.one_hot 3));
  check "dense equivalent" true (check_equivalence tiny (Encoding.make ~nbits:2 [| 0; 1; 2 |]));
  check "other assignment equivalent" true
    (check_equivalence tiny (Encoding.make ~nbits:2 [| 3; 0; 1 |]))

let test_encoded_equivalence_shiftreg () =
  let m = Benchmarks.Suite.find "shiftreg" in
  check "natural binary equivalent" true
    (check_equivalence m (Encoding.make ~nbits:3 (Array.init 8 (fun i -> i))))

(* Property: on random small machines with random encodings, the
   minimized encoded PLA implements the machine. *)
let gen_machine_and_encoding =
  QCheck.make
    ~print:(fun (seed, ns, nbits) -> Printf.sprintf "seed=%d ns=%d nbits=%d" seed ns nbits)
    QCheck.Gen.(
      int_bound 10_000 >>= fun seed ->
      int_range 2 6 >>= fun ns ->
      int_range (let r = max 1 ns - 1 in ignore r; 0) 0 >>= fun _ ->
      let nbits = 3 in
      return (seed, ns, nbits))

let prop_encoded_equivalence =
  QCheck.Test.make ~name:"encoded PLA implements the machine" ~count:25
    gen_machine_and_encoding (fun (seed, ns, nbits) ->
      let m =
        Benchmarks.Generator.generate ~name:"prop" ~num_inputs:2 ~num_outputs:2 ~num_states:ns
          ~num_rows:(4 * ns) ~seed
      in
      let rng = Random.State.make [| seed; 1 |] in
      let e = Encoding.random rng ~num_states:ns ~nbits in
      check_equivalence m e)

let test_pla_printing () =
  let e = Encoding.make ~nbits:2 [| 0; 1; 2 |] in
  let enc = Encoded.build tiny e in
  let cover = Encoded.minimize enc in
  let text = Pla.to_string cover ~num_binary_vars:3 in
  check "has .i" true (String.length text > 0 && String.sub text 0 2 = ".i");
  check "mentions .e" true
    (let n = String.length text in
     String.sub text (n - 3) 3 = ".e\n")

let suite =
  [
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "stats and lookup" `Quick test_stats_and_lookup;
    Alcotest.test_case "next simulation" `Quick test_next_simulation;
    Alcotest.test_case "kiss roundtrip" `Quick test_kiss_roundtrip;
    Alcotest.test_case "kiss parse errors" `Quick test_kiss_errors;
    Alcotest.test_case "kiss star and dash" `Quick test_kiss_star_and_dash;
    Alcotest.test_case "symbolic cover structure" `Quick test_symbolic_structure;
    Alcotest.test_case "symbolic minimize soundness" `Quick test_symbolic_on_dc_disjointness;
    Alcotest.test_case "encoding validation" `Quick test_encoding_validation;
    Alcotest.test_case "one-hot" `Quick test_one_hot;
    Alcotest.test_case "random encoding" `Quick test_random_encoding;
    Alcotest.test_case "area formula" `Quick test_area_formula;
    Alcotest.test_case "encoded equivalence (tiny)" `Quick test_encoded_equivalence_tiny;
    Alcotest.test_case "encoded equivalence (shiftreg)" `Quick test_encoded_equivalence_shiftreg;
    Alcotest.test_case "pla printing" `Quick test_pla_printing;
    QCheck_alcotest.to_alcotest prop_encoded_equivalence;
  ]
