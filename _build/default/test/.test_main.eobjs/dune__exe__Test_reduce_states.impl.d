test/test_reduce_states.ml: Alcotest Benchmarks Fsm List Printf QCheck QCheck_alcotest Reduce_states String
