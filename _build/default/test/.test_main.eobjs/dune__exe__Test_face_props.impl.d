test/test_face_props.ml: Array Bitvec Face Input_poset List Printf QCheck QCheck_alcotest Random
