test/test_harness.ml: Alcotest Buffer Format Harness Igreedy Ihybrid Lazy List String
