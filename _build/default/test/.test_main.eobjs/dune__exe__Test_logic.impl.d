test/test_logic.ml: Alcotest Array Cover Cube Domain List Logic Printf QCheck QCheck_alcotest String
