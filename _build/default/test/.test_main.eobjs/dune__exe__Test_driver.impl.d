test/test_driver.ml: Alcotest Benchmarks Encoded Encoding Fsm Harness List
