test/test_benchmarks.ml: Alcotest Array Benchmarks Fsm Kiss List String
