test/test_nova_embed.ml: Alcotest Array Bitvec Constraints Encoding Face Iexact Input_poset List Printf Seq String
