test/test_bitvec.ml: Alcotest Bitvec List Printf QCheck QCheck_alcotest String
