test/test_simulate.ml: Alcotest Benchmarks Constraints Encoding Fsm Ihybrid List QCheck QCheck_alcotest Random Simulate String Symbolic
