test/test_roundtrips.ml: Alcotest Array Benchmarks Cover Cube Domain Encoding Face Kiss Lazy List Logic Printf QCheck QCheck_alcotest Random String
