test/test_symbolic_details.ml: Alcotest Bitvec Constraints Cover Cube Domain Fsm List Logic Printf Symbolic
