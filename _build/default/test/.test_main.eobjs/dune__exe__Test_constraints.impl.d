test/test_constraints.ml: Alcotest Array Bitvec Constraints Encoding Fsm Ihybrid List QCheck QCheck_alcotest Random Symbolic
