test/test_export.ml: Alcotest Benchmarks Export Fsm List Multilevel Reduce_states String
