test/test_logic_bruteforce.ml: Array Cover Cube Domain Espresso List Logic Printf QCheck QCheck_alcotest Random String
