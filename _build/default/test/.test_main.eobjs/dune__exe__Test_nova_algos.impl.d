test/test_nova_algos.ml: Alcotest Array Bitvec Constraints Encoding Iexact Igreedy Ihybrid Input_poset Iohybrid List Out_encoder Printf Project QCheck QCheck_alcotest Random
