test/test_baselines.ml: Alcotest Array Baselines Benchmarks Bitvec Constraints Encoding Fsm List Printf QCheck QCheck_alcotest Random Symbolic
