test/test_integration.ml: Alcotest Array Baselines Benchmarks Constraints Encoded Encoding Fsm Iexact Igreedy Ihybrid Iohybrid List Printf String Symbmin Symbolic
