test/test_embed_policies.ml: Alcotest Array Bitvec Buffer Constraints Embed Encoding Face Format Harness Input_poset List String
