test/test_fsm.ml: Alcotest Array Benchmarks Cover Domain Encoded Encoding Fsm Kiss List Logic Pla Printf QCheck QCheck_alcotest Random String Symbolic
