test/test_multilevel.ml: Alcotest Array Cover Cube Domain Hashtbl List Logic Multilevel Printf QCheck QCheck_alcotest Random String
