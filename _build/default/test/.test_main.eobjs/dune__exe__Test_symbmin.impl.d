test/test_symbmin.ml: Alcotest Array Benchmarks Bitvec Constraints Iohybrid List Logic Printf Symbmin Symbolic
