test/test_espresso.ml: Alcotest Array Cover Cube Domain Espresso List Logic Pla Printf QCheck QCheck_alcotest String
