(* Tests for the state minimization substrate. *)

let check = Alcotest.(check bool)

let t input src dst output = { Fsm.input; src = Some src; dst = Some dst; output }

(* A machine with two copies of the same behaviour: b and c are
   equivalent, a is not. *)
let duplicated =
  Fsm.create ~name:"dup" ~num_inputs:1 ~num_outputs:1
    ~states:[| "a"; "b"; "c" |]
    ~transitions:
      [
        t "0" 0 1 "0"; t "1" 0 2 "1";
        t "0" 1 0 "1"; t "1" 1 1 "0";
        t "0" 2 0 "1"; t "1" 2 2 "0";
      ]
    ~reset:0 ()

let test_equivalent_duplicates () =
  let classes = Reduce_states.equivalent_states duplicated in
  check "b,c merged" true (List.mem [ 1; 2 ] classes);
  Alcotest.(check int) "two classes" 2 (List.length classes)

let test_reduce_duplicates () =
  let r = Reduce_states.reduce duplicated in
  Alcotest.(check int) "two states" 2 (Fsm.num_states ~m:r);
  (* Behaviour is preserved: simulate both machines from reset over all
     input sequences of length 5. *)
  let rec walk len s_orig s_red ok =
    if len = 0 || not ok then ok
    else
      List.for_all
        (fun input ->
          match (Fsm.next duplicated ~input ~src:s_orig, Fsm.next r ~input ~src:s_red) with
          | Some (Some d1, o1), Some (Some d2, o2) -> o1 = o2 && walk (len - 1) d1 d2 ok
          | None, None -> true
          | _ -> false)
        [ "0"; "1" ]
  in
  check "trace equivalent" true (walk 5 0 0 true)

let test_reduce_shiftreg_is_tight () =
  (* All 8 shift-register states are distinguishable. *)
  let m = Benchmarks.Suite.find "shiftreg" in
  let r = Reduce_states.reduce m in
  Alcotest.(check int) "no reduction" 8 (Fsm.num_states ~m:r)

let test_reduce_modulo12_is_tight () =
  let m = Benchmarks.Suite.find "modulo12" in
  Alcotest.(check int) "no reduction" 12 (Fsm.num_states ~m:(Reduce_states.reduce m))

(* Incompletely specified: a pair of states whose behaviours never clash
   on the specified part can merge. *)
let sparse =
  Fsm.create ~name:"sparse" ~num_inputs:1 ~num_outputs:1
    ~states:[| "a"; "b"; "c" |]
    ~transitions:
      [
        t "0" 0 2 "1";
        (* a under 1: unspecified *)
        t "1" 1 2 "1";
        (* b under 0: unspecified *)
        t "0" 2 2 "0"; t "1" 2 2 "0";
      ]
    ~reset:0 ()

let test_compatible_pairs () =
  let pairs = Reduce_states.compatible_pairs sparse in
  check "a,b compatible" true (List.mem (0, 1) pairs);
  check "a,c incompatible" true (not (List.mem (0, 2) pairs))

let test_reduce_incompletely_specified () =
  let r = Reduce_states.reduce_incompletely_specified sparse in
  Alcotest.(check int) "merged to 2 states" 2 (Fsm.num_states ~m:r);
  (* The merged machine must agree with the original wherever the
     original is specified. *)
  List.iter
    (fun (s, input, expect_out) ->
      (* state 0 and 1 both map to merged state 0; state 2 to 1. *)
      let s' = if s = 2 then 1 else 0 in
      match Fsm.next r ~input ~src:s' with
      | Some (_, out) ->
          check
            (Printf.sprintf "output preserved at s%d/%s" s input)
            true
            (String.for_all (fun _ -> true) out
            && String.length out = 1
            && (expect_out = '-' || out.[0] = expect_out || out.[0] = '-'))
      | None -> Alcotest.fail "specified behaviour lost")
    [ (0, "0", '1'); (1, "1", '1'); (2, "0", '0'); (2, "1", '0') ]

let test_incompatible_seed_propagates () =
  (* d and e output alike but lead to incompatible successors. *)
  let m =
    Fsm.create ~name:"prop" ~num_inputs:1 ~num_outputs:1
      ~states:[| "d"; "e"; "x"; "y" |]
      ~transitions:
        [
          t "0" 0 2 "0"; t "1" 0 0 "0";
          t "0" 1 3 "0"; t "1" 1 1 "0";
          t "0" 2 2 "1"; t "1" 2 2 "1";
          t "0" 3 3 "0"; t "1" 3 3 "1";
        ]
      ()
  in
  let pairs = Reduce_states.compatible_pairs m in
  check "x,y incompatible (outputs clash)" true (not (List.mem (2, 3) pairs));
  check "d,e incompatible (successors clash)" true (not (List.mem (0, 1) pairs))

let test_too_many_inputs_guard () =
  let m =
    Fsm.create ~name:"wide" ~num_inputs:13 ~num_outputs:1 ~states:[| "a" |]
      ~transitions:[ { Fsm.input = String.make 13 '-'; src = Some 0; dst = Some 0; output = "1" } ]
      ()
  in
  Alcotest.check_raises "guard" (Invalid_argument "Reduce_states: too many inputs to enumerate")
    (fun () -> ignore (Reduce_states.equivalent_states m))

(* Property: reduce never grows and is idempotent; the reduced machine is
   trace-equivalent to the original from every state-class representative. *)
let prop_reduce =
  QCheck.Test.make ~name:"reduce: monotone, idempotent, behaviour-preserving" ~count:40
    QCheck.(pair (int_bound 10_000) (int_range 2 8))
    (fun (seed, ns) ->
      let m =
        Benchmarks.Generator.generate ~name:"p" ~num_inputs:2 ~num_outputs:1 ~num_states:ns
          ~num_rows:(4 * ns) ~seed
      in
      let r = Reduce_states.reduce m in
      let rr = Reduce_states.reduce r in
      Fsm.num_states ~m:r <= ns
      && Fsm.num_states ~m:rr = Fsm.num_states ~m:r
      &&
      (* spot-check trace preservation from reset over depth 4 *)
      let rec walk depth s_orig s_red =
        depth = 0
        || List.for_all
             (fun input ->
               match (Fsm.next m ~input ~src:s_orig, Fsm.next r ~input ~src:s_red) with
               | Some (Some d1, o1), Some (Some d2, o2) ->
                   (* compare only specified output bits *)
                   String.length o1 = String.length o2
                   && (let ok = ref true in
                       String.iteri
                         (fun j c1 ->
                           let c2 = o2.[j] in
                           if c1 <> '-' && c2 <> '-' && c1 <> c2 then ok := false)
                         o1;
                       !ok)
                   && walk (depth - 1) d1 d2
               | None, _ -> true
               | Some (None, _), _ -> true
               | Some (Some _, _), (None | Some (None, _)) -> false)
             [ "00"; "01"; "10"; "11" ]
      in
      walk 4 0 0)

let suite =
  [
    Alcotest.test_case "equivalent duplicates" `Quick test_equivalent_duplicates;
    Alcotest.test_case "reduce duplicates" `Quick test_reduce_duplicates;
    Alcotest.test_case "shiftreg is tight" `Quick test_reduce_shiftreg_is_tight;
    Alcotest.test_case "modulo12 is tight" `Quick test_reduce_modulo12_is_tight;
    Alcotest.test_case "compatible pairs" `Quick test_compatible_pairs;
    Alcotest.test_case "reduce incompletely specified" `Quick test_reduce_incompletely_specified;
    Alcotest.test_case "incompatibility propagates" `Quick test_incompatible_seed_propagates;
    Alcotest.test_case "input width guard" `Quick test_too_many_inputs_guard;
    QCheck_alcotest.to_alcotest prop_reduce;
  ]
