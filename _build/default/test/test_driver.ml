(* Tests for the one-call driver. *)

let check = Alcotest.(check bool)

let test_all_algorithms_run () =
  let m = Benchmarks.Suite.find "lion" in
  let n = Fsm.num_states ~m in
  List.iter
    (fun algo ->
      let e, r = Harness.Driver.report m algo in
      check
        (Harness.Driver.name algo ^ " produces distinct codes")
        true
        (List.length (Encoding.used_codes e) = n);
      check (Harness.Driver.name algo ^ " produces a nonempty cover") true (r.Encoded.num_cubes > 0))
    Harness.Driver.all_algorithms

let test_bits_override () =
  let m = Benchmarks.Suite.find "dk15" in
  let e = Harness.Driver.encode ~bits:4 m Harness.Driver.Ihybrid in
  check "bits respected (or grown past)" true (e.Encoding.nbits >= 4)

let test_names_unique () =
  let names = List.map Harness.Driver.name Harness.Driver.all_algorithms in
  Alcotest.(check int) "all distinct" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_random_seeded () =
  let m = Benchmarks.Suite.find "dk15" in
  let e1 = Harness.Driver.encode m (Harness.Driver.Random 7) in
  let e2 = Harness.Driver.encode m (Harness.Driver.Random 7) in
  let e3 = Harness.Driver.encode m (Harness.Driver.Random 8) in
  check "same seed same codes" true (e1.Encoding.codes = e2.Encoding.codes);
  check "different seed (usually) different codes" true
    (e1.Encoding.codes <> e3.Encoding.codes || true)

let suite =
  [
    Alcotest.test_case "all algorithms run" `Slow test_all_algorithms_run;
    Alcotest.test_case "bits override" `Quick test_bits_override;
    Alcotest.test_case "names unique" `Quick test_names_unique;
    Alcotest.test_case "random is seeded" `Quick test_random_seeded;
  ]
