(* Unit and property tests for the Bitvec substrate. *)

let check = Alcotest.(check bool)

let test_create_empty () =
  let t = Bitvec.create 100 in
  check "fresh vector is empty" true (Bitvec.is_empty t);
  Alcotest.(check int) "length" 100 (Bitvec.length t);
  Alcotest.(check int) "cardinal" 0 (Bitvec.cardinal t)

let test_set_get () =
  let t = Bitvec.create 130 in
  Bitvec.set t 0;
  Bitvec.set t 63;
  Bitvec.set t 64;
  Bitvec.set t 129;
  check "bit 0" true (Bitvec.get t 0);
  check "bit 63" true (Bitvec.get t 63);
  check "bit 64" true (Bitvec.get t 64);
  check "bit 129" true (Bitvec.get t 129);
  check "bit 1" false (Bitvec.get t 1);
  Alcotest.(check int) "cardinal" 4 (Bitvec.cardinal t);
  Bitvec.clear t 63;
  check "cleared" false (Bitvec.get t 63);
  Alcotest.(check int) "cardinal after clear" 3 (Bitvec.cardinal t)

let test_full () =
  let t = Bitvec.full 67 in
  check "is_full" true (Bitvec.is_full t);
  Alcotest.(check int) "cardinal" 67 (Bitvec.cardinal t);
  let c = Bitvec.complement t in
  check "complement of full is empty" true (Bitvec.is_empty c);
  check "complement of empty is full" true (Bitvec.is_full (Bitvec.complement c))

let test_zero_length () =
  let t = Bitvec.create 0 in
  check "empty" true (Bitvec.is_empty t);
  check "full" true (Bitvec.is_full t);
  check "equal itself" true (Bitvec.equal t (Bitvec.full 0))

let test_out_of_range () =
  let t = Bitvec.create 10 in
  Alcotest.check_raises "get -1" (Invalid_argument "Bitvec: index out of range") (fun () ->
      ignore (Bitvec.get t (-1)));
  Alcotest.check_raises "get 10" (Invalid_argument "Bitvec: index out of range") (fun () ->
      ignore (Bitvec.get t 10));
  Alcotest.check_raises "negative create" (Invalid_argument "Bitvec.create") (fun () ->
      ignore (Bitvec.create (-1)))

let test_length_mismatch () =
  let a = Bitvec.create 4 and b = Bitvec.create 5 in
  Alcotest.check_raises "inter mismatch" (Invalid_argument "Bitvec: length mismatch") (fun () ->
      ignore (Bitvec.inter a b))

let test_set_ops () =
  let a = Bitvec.of_list 10 [ 1; 3; 5 ] in
  let b = Bitvec.of_list 10 [ 3; 5; 7 ] in
  Alcotest.(check (list int)) "inter" [ 3; 5 ] (Bitvec.to_list (Bitvec.inter a b));
  Alcotest.(check (list int)) "union" [ 1; 3; 5; 7 ] (Bitvec.to_list (Bitvec.union a b));
  Alcotest.(check (list int)) "diff" [ 1 ] (Bitvec.to_list (Bitvec.diff a b));
  check "subset no" false (Bitvec.subset a b);
  check "subset yes" true (Bitvec.subset (Bitvec.of_list 10 [ 3 ]) a);
  check "disjoint no" false (Bitvec.disjoint a b);
  check "disjoint yes" true (Bitvec.disjoint a (Bitvec.of_list 10 [ 0; 2 ]))

let test_ranges () =
  let t = Bitvec.create 100 in
  Bitvec.set_range t 10 20;
  check "range_full" true (Bitvec.range_full t 10 20);
  check "range_full beyond" false (Bitvec.range_full t 10 21);
  check "range_empty before" true (Bitvec.range_empty t 0 10);
  Alcotest.(check int) "range_cardinal" 20 (Bitvec.range_cardinal t 0 100);
  Bitvec.clear_range t 15 5;
  Alcotest.(check int) "after clear_range" 15 (Bitvec.range_cardinal t 0 100);
  check "empty range is full" true (Bitvec.range_full t 50 0);
  check "empty range is empty" true (Bitvec.range_empty t 50 0)

let test_string_roundtrip () =
  let s = "1010011101" in
  let t = Bitvec.of_string s in
  Alcotest.(check string) "roundtrip" s (Bitvec.to_string t);
  Alcotest.(check (option int)) "first_set" (Some 0) (Bitvec.first_set t);
  Alcotest.(check (option int)) "first_set empty" None (Bitvec.first_set (Bitvec.create 9))

let test_inplace () =
  let a = Bitvec.of_list 8 [ 0; 1; 2 ] in
  let b = Bitvec.of_list 8 [ 1; 2; 3 ] in
  let c = Bitvec.copy a in
  Bitvec.inter_into c b;
  Alcotest.(check (list int)) "inter_into" [ 1; 2 ] (Bitvec.to_list c);
  let d = Bitvec.copy a in
  Bitvec.union_into d b;
  Alcotest.(check (list int)) "union_into" [ 0; 1; 2; 3 ] (Bitvec.to_list d);
  Alcotest.(check (list int)) "copy isolated source" [ 0; 1; 2 ] (Bitvec.to_list a)

(* Property tests ------------------------------------------------------- *)

let gen_vec =
  QCheck.make
    ~print:(fun (n, l) -> Printf.sprintf "n=%d [%s]" n (String.concat ";" (List.map string_of_int l)))
    QCheck.Gen.(
      int_range 1 200 >>= fun n ->
      list_size (int_bound 40) (int_bound (n - 1)) >>= fun l -> return (n, l))

let vec_of (n, l) = Bitvec.of_list n l

let prop_demorgan =
  QCheck.Test.make ~name:"complement of union = inter of complements" ~count:200
    (QCheck.pair gen_vec gen_vec) (fun ((n1, l1), (_, l2)) ->
      let a = vec_of (n1, l1) and b = vec_of (n1, List.filter (fun i -> i < n1) l2) in
      Bitvec.equal
        (Bitvec.complement (Bitvec.union a b))
        (Bitvec.inter (Bitvec.complement a) (Bitvec.complement b)))

let prop_cardinal_inclusion_exclusion =
  QCheck.Test.make ~name:"|a| + |b| = |a∪b| + |a∩b|" ~count:200 (QCheck.pair gen_vec gen_vec)
    (fun ((n1, l1), (_, l2)) ->
      let a = vec_of (n1, l1) and b = vec_of (n1, List.filter (fun i -> i < n1) l2) in
      Bitvec.cardinal a + Bitvec.cardinal b
      = Bitvec.cardinal (Bitvec.union a b) + Bitvec.cardinal (Bitvec.inter a b))

let prop_subset_diff =
  QCheck.Test.make ~name:"a⊆b iff a\\b empty" ~count:200 (QCheck.pair gen_vec gen_vec)
    (fun ((n1, l1), (_, l2)) ->
      let a = vec_of (n1, l1) and b = vec_of (n1, List.filter (fun i -> i < n1) l2) in
      Bitvec.subset a b = Bitvec.is_empty (Bitvec.diff a b))

let prop_roundtrip =
  QCheck.Test.make ~name:"of_string/to_string roundtrip" ~count:200 gen_vec (fun (n, l) ->
      let a = vec_of (n, l) in
      Bitvec.equal a (Bitvec.of_string (Bitvec.to_string a)))

let prop_iter_matches_get =
  QCheck.Test.make ~name:"to_list matches get" ~count:200 gen_vec (fun (n, l) ->
      let a = vec_of (n, l) in
      let from_get = List.filter (Bitvec.get a) (List.init n (fun i -> i)) in
      from_get = Bitvec.to_list a)

let suite =
  [
    Alcotest.test_case "create/empty" `Quick test_create_empty;
    Alcotest.test_case "set/get across words" `Quick test_set_get;
    Alcotest.test_case "full/complement" `Quick test_full;
    Alcotest.test_case "zero length" `Quick test_zero_length;
    Alcotest.test_case "out of range" `Quick test_out_of_range;
    Alcotest.test_case "length mismatch" `Quick test_length_mismatch;
    Alcotest.test_case "set operations" `Quick test_set_ops;
    Alcotest.test_case "range operations" `Quick test_ranges;
    Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
    Alcotest.test_case "in-place ops" `Quick test_inplace;
    QCheck_alcotest.to_alcotest prop_demorgan;
    QCheck_alcotest.to_alcotest prop_cardinal_inclusion_exclusion;
    QCheck_alcotest.to_alcotest prop_subset_diff;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_iter_matches_get;
  ]
