(* Tests for reachability pruning and the DOT/BLIF exports. *)

let check = Alcotest.(check bool)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  loop 0

let t input src dst output = { Fsm.input; src = Some src; dst = Some dst; output }

let with_island =
  Fsm.create ~name:"island" ~num_inputs:1 ~num_outputs:1
    ~states:[| "a"; "b"; "zzz" |]
    ~transitions:
      [ t "0" 0 1 "0"; t "1" 0 0 "0"; t "-" 1 0 "1"; t "-" 2 2 "1" (* unreachable *) ]
    ~reset:0 ()

let test_remove_unreachable () =
  let r = Reduce_states.remove_unreachable with_island in
  Alcotest.(check int) "island dropped" 2 (Fsm.num_states ~m:r);
  check "zzz gone" true (Fsm.state_index r "zzz" = None);
  Alcotest.(check int) "its row dropped" 3 (List.length r.Fsm.transitions);
  (* Fully reachable machines are returned unchanged. *)
  let m = Benchmarks.Suite.find "shiftreg" in
  check "shiftreg untouched" true (Reduce_states.remove_unreachable m == m)

let test_remove_unreachable_respects_reset () =
  let m =
    Fsm.create ~name:"r" ~num_inputs:1 ~num_outputs:1
      ~states:[| "dead"; "live" |]
      ~transitions:[ t "-" 0 0 "0"; t "-" 1 1 "1" ]
      ~reset:1 ()
  in
  let r = Reduce_states.remove_unreachable m in
  Alcotest.(check int) "only live kept" 1 (Fsm.num_states ~m:r);
  Alcotest.(check (option int)) "reset remapped" (Some 0) r.Fsm.reset

let test_dot () =
  let s = Export.dot_string with_island in
  check "digraph header" true (contains s "digraph island");
  check "reset doubled" true (contains s "a [shape=doublecircle]");
  check "edge labelled" true (contains s "a -> b [label=\"0/0\"]")

let test_blif () =
  let net =
    {
      Multilevel.nodes =
        [
          { Multilevel.name = "o0"; products = [ [ 0; 3 ]; [ 4 ] ] };
          (* x0 AND NOT x1, OR x2 *)
        ];
      next_var = 3;
    }
  in
  let s = Export.blif_string net ~name:"f" ~num_inputs:3 in
  check "model" true (contains s ".model f");
  check "inputs" true (contains s ".inputs x0 x1 x2");
  check "outputs" true (contains s ".outputs o0");
  check "names" true (contains s ".names x0 x1 x2 o0");
  check "cube row 10-" true (contains s "10- 1");
  check "cube row --1" true (contains s "--1 1");
  check "end" true (contains s ".end")

let test_blif_with_extracted_node () =
  (* Run the optimizer on a sharable network and export: extracted nodes
     must appear as intermediate signals. *)
  let net =
    {
      Multilevel.nodes =
        [
          { Multilevel.name = "o0"; products = [ [ 0; 2; 4 ]; [ 0; 2; 6 ] ] };
          { Multilevel.name = "o1"; products = [ [ 0; 2; 8 ] ] };
        ];
      next_var = 5;
    }
  in
  let opt = Multilevel.optimize net in
  let s = Export.blif_string opt ~name:"g" ~num_inputs:5 in
  check "valid blif" true (contains s ".model g" && contains s ".end");
  if List.length opt.Multilevel.nodes > 2 then
    check "extracted node printed" true (contains s ".names x0 x1 k5" || contains s "k5")

let suite =
  [
    Alcotest.test_case "remove unreachable" `Quick test_remove_unreachable;
    Alcotest.test_case "remove unreachable with reset" `Quick test_remove_unreachable_respects_reset;
    Alcotest.test_case "dot export" `Quick test_dot;
    Alcotest.test_case "blif export" `Quick test_blif;
    Alcotest.test_case "blif with extraction" `Quick test_blif_with_extracted_node;
  ]
