(* Tests for the benchmark suite and generator. *)

let check = Alcotest.(check bool)

let test_suite_complete () =
  (* Every Table I / V / VII name resolves to a machine. *)
  List.iter
    (fun name -> ignore (Benchmarks.Suite.find name))
    (Benchmarks.Suite.table1 @ Benchmarks.Suite.table5 @ Benchmarks.Suite.table7);
  Alcotest.(check int) "30 machines in Table I" 30 (List.length Benchmarks.Suite.table1);
  Alcotest.(check int) "19 machines in Table V" 19 (List.length Benchmarks.Suite.table5);
  Alcotest.(check int) "24 machines in Table VII" 24 (List.length Benchmarks.Suite.table7)

let test_table1_ordering () =
  (* Table I order is by non-decreasing number of states (the x-axis of
     the paper's figures). *)
  let states = List.map (fun n -> Fsm.num_states ~m:(Benchmarks.Suite.find n)) Benchmarks.Suite.table1 in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a <= b && sorted rest
    | [ _ ] | [] -> true
  in
  check "non-decreasing" true (sorted states)

let test_declared_statistics () =
  (* Machines match their Table-I statistics (#inputs, #outputs,
     #states); #rows is approximate by design for some machines. *)
  List.iter
    (fun (name, i, o, s) ->
      let m = Benchmarks.Suite.find name in
      let st = Fsm.stats m in
      Alcotest.(check int) (name ^ " inputs") i st.Fsm.stat_inputs;
      Alcotest.(check int) (name ^ " outputs") o st.Fsm.stat_outputs;
      Alcotest.(check int) (name ^ " states") s st.Fsm.stat_states)
    [
      ("dk15", 3, 5, 4); ("bbtas", 2, 2, 6); ("beecount", 3, 4, 7); ("dk14", 3, 5, 7);
      ("shiftreg", 1, 1, 8); ("bbara", 4, 2, 10); ("modulo12", 1, 1, 12);
      ("cse", 7, 7, 16); ("keyb", 7, 2, 19); ("donfile", 2, 1, 24); ("sand", 11, 9, 32);
      ("planet", 7, 19, 48); ("scf", 27, 56, 121);
    ]

let test_generator_deterministic () =
  let gen () =
    Benchmarks.Generator.generate ~name:"t" ~num_inputs:3 ~num_outputs:2 ~num_states:9
      ~num_rows:40 ~seed:99
  in
  let m1 = gen () and m2 = gen () in
  Alcotest.(check string) "same machine" (Kiss.to_string m1) (Kiss.to_string m2)

let test_generator_row_budget () =
  let m =
    Benchmarks.Generator.generate ~name:"t" ~num_inputs:4 ~num_outputs:2 ~num_states:10
      ~num_rows:25 ~seed:3
  in
  check "rows within budget" true (List.length m.Fsm.transitions <= 25)

let test_generator_determinism_of_rows () =
  (* No two rows with the same present state may have overlapping input
     cubes mapping to different behaviour — the tables must stay
     deterministic. *)
  let overlap a b =
    let n = String.length a in
    let rec loop i =
      i = n || ((a.[i] = '-' || b.[i] = '-' || a.[i] = b.[i]) && loop (i + 1))
    in
    loop 0
  in
  List.iter
    (fun name ->
      let m = Benchmarks.Suite.find name in
      let rows = Array.of_list m.Fsm.transitions in
      let bad = ref 0 in
      Array.iteri
        (fun i a ->
          Array.iteri
            (fun j b ->
              if i < j && a.Fsm.src = b.Fsm.src && overlap a.Fsm.input b.Fsm.input then
                if a.Fsm.dst <> b.Fsm.dst || a.Fsm.output <> b.Fsm.output then incr bad)
            rows)
        rows;
      Alcotest.(check int) (name ^ " nondeterministic row pairs") 0 !bad)
    [ "dk15"; "bbara"; "ex3"; "beecount"; "train11" ]

let test_handwritten_shiftreg_semantics () =
  let m = Benchmarks.Suite.find "shiftreg" in
  (* Shifting 1 into state 011 gives 111 and outputs the evicted 0. *)
  match Fsm.next m ~input:"1" ~src:0b011 with
  | Some (Some dst, out) ->
      Alcotest.(check int) "next" 0b111 dst;
      Alcotest.(check string) "evicted bit" "0" out
  | _ -> Alcotest.fail "missing transition"

let test_handwritten_modulo12_semantics () =
  let m = Benchmarks.Suite.find "modulo12" in
  (match Fsm.next m ~input:"1" ~src:11 with
  | Some (Some 0, "1") -> ()
  | _ -> Alcotest.fail "wrap with carry expected");
  match Fsm.next m ~input:"0" ~src:5 with
  | Some (Some 5, "0") -> ()
  | _ -> Alcotest.fail "hold expected"

let test_paper_data_present () =
  List.iter
    (fun name ->
      match Benchmarks.Paper_data.find name with
      | None -> Alcotest.failf "no paper data for %s" name
      | Some row ->
          check (name ^ " has nova best") true (row.Benchmarks.Paper_data.nova_best_area <> None))
    Benchmarks.Suite.table1;
  check "totals recorded" true
    (Benchmarks.Paper_data.total_nova_best_area = 51053
    && Benchmarks.Paper_data.total_random_best_area = 65453
    && Benchmarks.Paper_data.total_random_avg_area = 72002)

let suite =
  [
    Alcotest.test_case "suite completeness" `Quick test_suite_complete;
    Alcotest.test_case "table1 ordering" `Quick test_table1_ordering;
    Alcotest.test_case "declared statistics" `Quick test_declared_statistics;
    Alcotest.test_case "generator deterministic" `Quick test_generator_deterministic;
    Alcotest.test_case "generator row budget" `Quick test_generator_row_budget;
    Alcotest.test_case "generated tables deterministic" `Quick test_generator_determinism_of_rows;
    Alcotest.test_case "shiftreg semantics" `Quick test_handwritten_shiftreg_semantics;
    Alcotest.test_case "modulo12 semantics" `Quick test_handwritten_modulo12_semantics;
    Alcotest.test_case "paper data present" `Quick test_paper_data_present;
  ]
