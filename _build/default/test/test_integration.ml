(* End-to-end integration tests: the full paper flow on small machines,
   checking functional equivalence of every algorithm's implementation
   and the qualitative relationships the paper reports. *)

let check = Alcotest.(check bool)

let all_inputs n =
  List.init (1 lsl n) (fun v -> String.init n (fun i -> if v land (1 lsl i) <> 0 then '1' else '0'))

let equivalent m (e : Encoding.t) =
  let enc = Encoded.build m e in
  let cover = Encoded.minimize enc in
  let ok = ref true in
  for s = 0 to Fsm.num_states ~m - 1 do
    List.iter
      (fun input ->
        match Fsm.next m ~input ~src:s with
        | None -> ()
        | Some (dst, out) ->
            let next_code, outputs = Encoded.eval enc cover ~input ~code:(Encoding.code e s) in
            (match dst with
            | Some d -> if next_code <> Encoding.code e d then ok := false
            | None -> ());
            String.iteri
              (fun j ch ->
                match ch with
                | '1' -> if not outputs.(j) then ok := false
                | '0' -> if outputs.(j) then ok := false
                | _ -> ())
              out)
      (all_inputs m.Fsm.num_inputs)
  done;
  !ok

let encodings_of m =
  let n = Fsm.num_states ~m in
  let sym = Symbolic.of_fsm m in
  let ics = Constraints.of_symbolic sym in
  let sm = Symbmin.run sym in
  [
    ("ihybrid", (Ihybrid.ihybrid_code ~num_states:n ics).Ihybrid.encoding);
    ("igreedy", (Igreedy.igreedy_code ~num_states:n ics).Igreedy.encoding);
    ("iohybrid", (Iohybrid.iohybrid_code sm.Symbmin.problem).Iohybrid.encoding);
    ("iovariant", (Iohybrid.iovariant_code sm.Symbmin.problem).Iohybrid.encoding);
    ("kiss", Baselines.kiss_encode ~num_states:n ics);
    ( "mustang",
      Baselines.mustang_encode m ~flavor:Baselines.Fanout ~include_outputs:true
        ~nbits:(Fsm.min_code_length m) );
    ("one-hot", Encoding.one_hot n);
  ]

let test_all_algorithms_equivalent () =
  List.iter
    (fun name ->
      let m = Benchmarks.Suite.find name in
      List.iter
        (fun (label, e) ->
          check (Printf.sprintf "%s/%s implements the machine" name label) true (equivalent m e))
        (encodings_of m))
    [ "lion"; "shiftreg"; "bbtas"; "dk15" ]

let test_iexact_equivalent () =
  let m = Benchmarks.Suite.find "lion" in
  let ics = Constraints.of_symbolic (Symbolic.of_fsm m) in
  let groups = List.map (fun (ic : Constraints.input_constraint) -> ic.Constraints.states) ics in
  match Iexact.iexact_code ~num_states:(Fsm.num_states ~m) groups with
  | Iexact.Exhausted -> Alcotest.fail "iexact exhausted on lion"
  | Iexact.Sat { k; codes; _ } ->
      check "iexact implements lion" true (equivalent m (Encoding.make ~nbits:k codes))

let test_shiftreg_headline () =
  (* The paper's shiftreg result: NOVA reaches 4 product terms in 3 bits
     (area 48), far below 1-hot. *)
  let m = Benchmarks.Suite.find "shiftreg" in
  let n = Fsm.num_states ~m in
  let ics = Constraints.of_symbolic (Symbolic.of_fsm m) in
  let e = (Ihybrid.ihybrid_code ~num_states:n ics).Ihybrid.encoding in
  let r = Encoded.implement m e in
  Alcotest.(check int) "3 bits" 3 e.Encoding.nbits;
  Alcotest.(check int) "4 cubes" 4 r.Encoded.num_cubes;
  Alcotest.(check int) "area 48" 48 r.Encoded.area;
  let oh = Encoded.implement m (Encoding.one_hot n) in
  check "far below 1-hot" true (r.Encoded.area * 2 < oh.Encoded.area)

let test_kiss_never_loses_constraints () =
  (* KISS's defining property on a real machine of the suite. *)
  let m = Benchmarks.Suite.find "dk17" in
  let ics = Constraints.of_symbolic (Symbolic.of_fsm m) in
  let e = Baselines.kiss_encode ~num_states:(Fsm.num_states ~m) ics in
  Alcotest.(check int) "all satisfied" (List.length ics) (Constraints.num_satisfied e ics)

let test_degenerate_machines () =
  (* One state, no inputs: everything should still work. *)
  let m1 =
    Fsm.create ~name:"single" ~num_inputs:0 ~num_outputs:1 ~states:[| "s" |]
      ~transitions:[ { Fsm.input = ""; src = Some 0; dst = Some 0; output = "1" } ]
      ()
  in
  let ics = Constraints.of_symbolic (Symbolic.of_fsm m1) in
  Alcotest.(check int) "no constraints" 0 (List.length ics);
  let e = (Ihybrid.ihybrid_code ~num_states:1 ics).Ihybrid.encoding in
  let r = Encoded.implement m1 e in
  check "implements constant" true (r.Encoded.num_cubes >= 1);
  (* Two states, no outputs asserted anywhere. *)
  let m2 =
    Fsm.create ~name:"dark" ~num_inputs:1 ~num_outputs:1 ~states:[| "a"; "b" |]
      ~transitions:
        [
          { Fsm.input = "0"; src = Some 0; dst = Some 1; output = "0" };
          { Fsm.input = "1"; src = Some 0; dst = Some 0; output = "0" };
          { Fsm.input = "-"; src = Some 1; dst = Some 0; output = "0" };
        ]
      ()
  in
  let ics2 = Constraints.of_symbolic (Symbolic.of_fsm m2) in
  let e2 = (Ihybrid.ihybrid_code ~num_states:2 ics2).Ihybrid.encoding in
  check "dark machine equivalent" true (equivalent m2 e2)

let test_unspecified_rows_are_free () =
  (* A machine with an unspecified next state must still minimize and
     simulate on the specified part. *)
  let m =
    Fsm.create ~name:"holes" ~num_inputs:1 ~num_outputs:1 ~states:[| "a"; "b" |]
      ~transitions:
        [
          { Fsm.input = "0"; src = Some 0; dst = Some 1; output = "1" };
          { Fsm.input = "1"; src = Some 0; dst = None; output = "-" };
          { Fsm.input = "-"; src = Some 1; dst = Some 0; output = "0" };
        ]
      ()
  in
  let e = Encoding.make ~nbits:1 [| 0; 1 |] in
  check "holes equivalent on specified part" true (equivalent m e)

let suite =
  [
    Alcotest.test_case "all algorithms implement the machine" `Slow test_all_algorithms_equivalent;
    Alcotest.test_case "iexact implements lion" `Quick test_iexact_equivalent;
    Alcotest.test_case "shiftreg headline result" `Quick test_shiftreg_headline;
    Alcotest.test_case "kiss satisfies all on dk17" `Quick test_kiss_never_loses_constraints;
    Alcotest.test_case "degenerate machines" `Quick test_degenerate_machines;
    Alcotest.test_case "unspecified rows are don't cares" `Quick test_unspecified_rows_are_free;
  ]
