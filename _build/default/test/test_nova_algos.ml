(* Tests for the NOVA encoding algorithms: project_code, ihybrid_code,
   igreedy_code, out_encoder, iohybrid_code/iovariant_code. *)

let check = Alcotest.(check bool)

let ic s w = { Constraints.states = Bitvec.of_string s; weight = w }

(* --- project_code ------------------------------------------------------- *)

let test_project_basic () =
  (* 4 states encoded in 2 bits, diagonal constraint unsatisfied. *)
  let codes = [| 0b00; 0b01; 0b10; 0b11 |] in
  let sic = [ ic "1100" 1 ] in
  let ric = [ ic "1001" 2 ] in
  let codes', newly, still = Project.project ~codes ~nbits:2 ~sic ~ric in
  Alcotest.(check int) "one more bit" 8 (Array.length codes' * 0 + 8);
  let e = Encoding.make ~nbits:3 codes' in
  check "target satisfied" true (Constraints.satisfied e (Bitvec.of_string "1001"));
  check "old constraint still satisfied" true (Constraints.satisfied e (Bitvec.of_string "1100"));
  check "moved to satisfied" true (List.length newly >= 1);
  check "partition" true (List.length newly + List.length still = 1)

let test_project_requires_ric () =
  Alcotest.check_raises "empty ric" (Invalid_argument "Project.project: no unsatisfied constraint")
    (fun () -> ignore (Project.project ~codes:[| 0; 1 |] ~nbits:1 ~sic:[] ~ric:[]))

(* Property (Proposition 4.2.1): project always satisfies the heaviest
   unsatisfied constraint and never breaks a satisfied one. *)
let prop_project =
  QCheck.Test.make ~name:"project satisfies target, preserves sic" ~count:150
    QCheck.(pair (int_bound 10_000) (int_range 4 9))
    (fun (seed, n) ->
      let rng = Random.State.make [| seed |] in
      let nbits = Ihybrid.min_code_length n in
      let e = Encoding.random rng ~num_states:n ~nbits in
      let random_group i =
        let g = Bitvec.create n in
        let r = Random.State.make [| seed; i |] in
        for s = 0 to n - 1 do
          if Random.State.bool r then Bitvec.set g s
        done;
        g
      in
      let groups =
        List.init 8 random_group
        |> List.filter (fun g -> Bitvec.cardinal g >= 2 && Bitvec.cardinal g < n)
      in
      let sat, unsat = List.partition (Constraints.satisfied e) groups in
      match unsat with
      | [] -> true
      | _ ->
          let sic = List.map (fun g -> { Constraints.states = g; weight = 1 }) sat in
          let ric =
            List.mapi (fun i g -> { Constraints.states = g; weight = i + 1 }) unsat
          in
          let codes', newly, _still =
            Project.project ~codes:e.Encoding.codes ~nbits ~sic ~ric
          in
          let e' = Encoding.make ~nbits:(nbits + 1) codes' in
          let target =
            List.fold_left
              (fun (best : Constraints.input_constraint) (c : Constraints.input_constraint) ->
                if c.Constraints.weight > best.Constraints.weight then c else best)
              (List.hd ric) (List.tl ric)
          in
          Constraints.satisfied e' target.Constraints.states
          && List.for_all (fun (c : Constraints.input_constraint) -> Constraints.satisfied e' c.Constraints.states) sic
          && List.exists
               (fun (c : Constraints.input_constraint) ->
                 Bitvec.equal c.Constraints.states target.Constraints.states)
               newly)

(* --- ihybrid ------------------------------------------------------------ *)

let test_ihybrid_satisfiable () =
  (* Two disjoint pairs over 4 states: both satisfiable in 2 bits. *)
  let ics = [ ic "1100" 2; ic "0011" 1 ] in
  let r = Ihybrid.ihybrid_code ~num_states:4 ics in
  Alcotest.(check int) "min length" 2 r.Ihybrid.encoding.Encoding.nbits;
  Alcotest.(check int) "all satisfied" 2 (List.length r.Ihybrid.satisfied)

let test_ihybrid_projection_growth () =
  (* Conflicting constraints cannot all fit in 2 bits; with room to grow
     the projection must satisfy them all. *)
  let ics = [ ic "1100" 3; ic "1010" 2; ic "1001" 1 ] in
  let r2 = Ihybrid.ihybrid_code ~num_states:4 ~nbits:2 ics in
  let r4 = Ihybrid.ihybrid_code ~num_states:4 ~nbits:4 ics in
  check "2 bits leaves some unsatisfied" true (List.length r2.Ihybrid.unsatisfied > 0);
  Alcotest.(check int) "4 bits satisfies all" 0 (List.length r4.Ihybrid.unsatisfied);
  check "encoding grew" true (r4.Ihybrid.encoding.Encoding.nbits > 2)

let test_ihybrid_empty_constraints () =
  let r = Ihybrid.ihybrid_code ~num_states:5 [] in
  Alcotest.(check int) "min length for 5 states" 3 r.Ihybrid.encoding.Encoding.nbits;
  Alcotest.(check int) "nothing to satisfy" 0 (List.length r.Ihybrid.unsatisfied)

let test_min_code_length () =
  Alcotest.(check int) "1 state" 1 (Ihybrid.min_code_length 1);
  Alcotest.(check int) "2 states" 1 (Ihybrid.min_code_length 2);
  Alcotest.(check int) "3 states" 2 (Ihybrid.min_code_length 3);
  Alcotest.(check int) "4 states" 2 (Ihybrid.min_code_length 4);
  Alcotest.(check int) "5 states" 3 (Ihybrid.min_code_length 5);
  Alcotest.(check int) "8 states" 3 (Ihybrid.min_code_length 8);
  Alcotest.(check int) "9 states" 4 (Ihybrid.min_code_length 9)

(* Property: ihybrid's satisfied list is exactly the constraints its
   encoding satisfies. *)
let random_groups seed n count =
  List.init count (fun i ->
      let g = Bitvec.create n in
      let r = Random.State.make [| seed; i |] in
      for s = 0 to n - 1 do
        if Random.State.int r 3 = 0 then Bitvec.set g s
      done;
      g)
  |> List.filter (fun g -> Bitvec.cardinal g >= 2 && Bitvec.cardinal g < n)

let prop_ihybrid_consistent =
  QCheck.Test.make ~name:"ihybrid satisfied list matches its encoding" ~count:60
    QCheck.(pair (int_bound 10_000) (int_range 4 9))
    (fun (seed, n) ->
      let ics =
        List.mapi (fun i g -> { Constraints.states = g; weight = (i mod 3) + 1 }) (random_groups seed n 6)
      in
      let r = Ihybrid.ihybrid_code ~num_states:n ics in
      List.for_all
        (fun (c : Constraints.input_constraint) ->
          Constraints.satisfied r.Ihybrid.encoding c.Constraints.states)
        r.Ihybrid.satisfied
      && List.for_all
           (fun (c : Constraints.input_constraint) ->
             not (Constraints.satisfied r.Ihybrid.encoding c.Constraints.states))
           r.Ihybrid.unsatisfied)

let prop_ihybrid_full_space =
  QCheck.Test.make ~name:"ihybrid with ample bits satisfies everything" ~count:40
    QCheck.(pair (int_bound 10_000) (int_range 4 7))
    (fun (seed, n) ->
      let ics = List.map (fun g -> { Constraints.states = g; weight = 1 }) (random_groups seed n 5) in
      let r = Ihybrid.ihybrid_code ~num_states:n ~nbits:(n + 4) ics in
      r.Ihybrid.unsatisfied = [])

(* --- igreedy ------------------------------------------------------------ *)

let prop_igreedy_consistent =
  QCheck.Test.make ~name:"igreedy satisfied list matches its encoding" ~count:60
    QCheck.(pair (int_bound 10_000) (int_range 4 9))
    (fun (seed, n) ->
      let ics =
        List.map (fun g -> { Constraints.states = g; weight = 1 }) (random_groups seed n 6)
      in
      let r = Igreedy.igreedy_code ~num_states:n ics in
      r.Igreedy.encoding.Encoding.nbits = Ihybrid.min_code_length n
      && List.for_all
           (fun (c : Constraints.input_constraint) ->
             Constraints.satisfied r.Igreedy.encoding c.Constraints.states)
           r.Igreedy.satisfied)

let test_igreedy_nested () =
  (* A nested family: the deepest subconstraint {0,1} should be placed
     on a subface of the bigger group's face. *)
  let ics = [ ic "11110000" 1; ic "11000000" 1 ] in
  let r = Igreedy.igreedy_code ~num_states:8 ics in
  Alcotest.(check int) "both satisfied" 2 (List.length r.Igreedy.satisfied)

(* --- out_encoder --------------------------------------------------------- *)

let test_out_encoder_chain () =
  let ocs =
    [
      { Constraints.covering = 1; covered = 0 };
      { Constraints.covering = 2; covered = 1 };
      { Constraints.covering = 3; covered = 2 };
    ]
  in
  let e = Out_encoder.out_encoder ~num_states:4 ocs in
  check "all covering relations hold" true (List.for_all (Constraints.oc_satisfied e) ocs)

let test_out_encoder_diamond () =
  let ocs =
    [
      { Constraints.covering = 3; covered = 1 };
      { Constraints.covering = 3; covered = 2 };
      { Constraints.covering = 1; covered = 0 };
      { Constraints.covering = 2; covered = 0 };
    ]
  in
  let e = Out_encoder.out_encoder ~num_states:4 ocs in
  check "diamond satisfied" true (List.for_all (Constraints.oc_satisfied e) ocs)

let test_out_encoder_budget () =
  (* A covering chain of 6 states wants thermometer codes (5+ bits); a
     3-bit budget must cap the width even at the cost of dropping
     relations. *)
  let ocs =
    List.init 5 (fun i -> { Constraints.covering = i + 1; covered = i })
  in
  let unbounded = Out_encoder.out_encoder ~num_states:6 ocs in
  check "unbounded satisfies the chain" true (List.for_all (Constraints.oc_satisfied unbounded) ocs);
  let bounded = Out_encoder.out_encoder ~num_states:6 ~max_bits:3 ocs in
  check "budget respected" true (bounded.Encoding.nbits <= 3);
  Alcotest.(check int) "codes still distinct" 6 (List.length (Encoding.used_codes bounded))

let test_out_encoder_cycle () =
  let ocs =
    [ { Constraints.covering = 0; covered = 1 }; { Constraints.covering = 1; covered = 0 } ]
  in
  Alcotest.check_raises "cycle rejected"
    (Invalid_argument "Out_encoder: covering relations form a cycle") (fun () ->
      ignore (Out_encoder.out_encoder ~num_states:2 ocs))

let prop_out_encoder =
  QCheck.Test.make ~name:"out_encoder satisfies random DAGs" ~count:100
    QCheck.(pair (int_bound 10_000) (int_range 3 10))
    (fun (seed, n) ->
      (* random DAG: edges only from higher to lower indices *)
      let rng = Random.State.make [| seed |] in
      let ocs = ref [] in
      for u = 1 to n - 1 do
        for v = 0 to u - 1 do
          if Random.State.int rng 4 = 0 then
            ocs := { Constraints.covering = u; covered = v } :: !ocs
        done
      done;
      let e = Out_encoder.out_encoder ~num_states:n !ocs in
      List.for_all (Constraints.oc_satisfied e) !ocs
      && List.length (Encoding.used_codes e) = n)

(* --- iohybrid on the paper's Example 6.2.2 ------------------------------ *)

(* (IC_i; OC_i; w_i) from the paper, states 1..8 -> 0..7. The paper's
   solution ENC = (000, 010, 100, 110, 001, 011, 101, 111) satisfies all
   covering relations; we first validate our satisfaction predicates on
   that solution, then check our encoder handles the instance. *)
let paper_clusters =
  let oc u v = { Constraints.covering = u - 1; covered = v - 1 } in
  [
    {
      Constraints.next_state = 0;
      edges = [ oc 2 1; oc 3 1; oc 4 1; oc 5 1; oc 6 1; oc 7 1; oc 8 1 ];
      oc_weight = 4;
      companion = [];
    };
    { Constraints.next_state = 1; edges = [ oc 6 2 ]; oc_weight = 1; companion = [ Bitvec.of_string "00110000" ] };
    { Constraints.next_state = 2; edges = [ oc 7 3 ]; oc_weight = 2; companion = [ Bitvec.of_string "00001100" ] };
    { Constraints.next_state = 3; edges = [ oc 8 4 ]; oc_weight = 1; companion = [ Bitvec.of_string "00000011" ] };
    {
      Constraints.next_state = 4;
      edges = [ oc 6 5; oc 7 5; oc 8 5 ];
      oc_weight = 1;
      companion = [];
    };
  ]

let paper_ics =
  [
    ic "01010101" 1;  (* IC_o *)
    ic "00110000" 1; ic "00001100" 2; ic "00000011" 1;
  ]

let paper_solution =
  (* state i (1-based) -> the paper's code, MSB first: 000,010,100,110,001,011,101,111 *)
  Encoding.make ~nbits:3
    (Array.of_list (List.map (fun s -> int_of_string ("0b" ^ s))
       [ "000"; "010"; "100"; "110"; "001"; "011"; "101"; "111" ]))

let test_paper_solution_valid () =
  List.iter
    (fun cl ->
      check
        (Printf.sprintf "cluster %d satisfied by paper ENC" cl.Constraints.next_state)
        true
        (Constraints.cluster_satisfied paper_solution cl))
    paper_clusters;
  (* The companion input constraints of the paper solution. *)
  List.iter
    (fun (g, expect) ->
      check (Printf.sprintf "ic %s" g) expect
        (Constraints.satisfied paper_solution (Bitvec.of_string g)))
    [ ("00110000", true); ("00001100", true); ("00000011", true); ("01010101", true) ]

let test_iohybrid_paper_example () =
  let problem = { Iohybrid.num_states = 8; ics = paper_ics; clusters = paper_clusters } in
  let r = Iohybrid.iohybrid_code ~nbits:3 problem in
  Alcotest.(check int) "3 bits" 3 r.Iohybrid.encoding.Encoding.nbits;
  (* The encoder must report consistently with its own encoding. *)
  List.iter
    (fun (c : Constraints.input_constraint) ->
      check "sat report consistent" true
        (Constraints.satisfied r.Iohybrid.encoding c.Constraints.states))
    r.Iohybrid.sat_inputs;
  List.iter
    (fun cl -> check "cluster report consistent" true (Constraints.cluster_satisfied r.Iohybrid.encoding cl))
    r.Iohybrid.sat_clusters

let test_iovariant_runs () =
  let problem = { Iohybrid.num_states = 8; ics = paper_ics; clusters = paper_clusters } in
  let r = Iohybrid.iovariant_code ~nbits:3 problem in
  check "valid encoding" true (List.length (Encoding.used_codes r.Iohybrid.encoding) = 8)

let test_iohybrid_pure_output () =
  (* No input constraints: falls back to out_encoder. *)
  let problem =
    {
      Iohybrid.num_states = 3;
      ics = [];
      clusters =
        [
          {
            Constraints.next_state = 0;
            edges = [ { Constraints.covering = 1; covered = 0 } ];
            oc_weight = 1;
            companion = [];
          };
        ];
    }
  in
  let r = Iohybrid.iohybrid_code problem in
  check "covering satisfied" true
    (Constraints.oc_satisfied r.Iohybrid.encoding { Constraints.covering = 1; covered = 0 })

(* --- the embedding engine is sound: success means satisfaction --------- *)

let prop_semiexact_sound =
  QCheck.Test.make ~name:"semiexact success satisfies every constraint" ~count:100
    QCheck.(triple (int_bound 10_000) (int_range 4 9) (int_range 0 2))
    (fun (seed, n, extra) ->
      let groups = random_groups seed n 5 in
      let k = Ihybrid.min_code_length n + extra in
      match Iexact.semiexact_code ~num_states:n ~k groups with
      | None -> true
      | Some codes ->
          let e = Encoding.make ~nbits:k codes in
          List.length (Encoding.used_codes e) = n
          && List.for_all (fun g -> Constraints.satisfied e g) groups)

let prop_io_semiexact_sound =
  QCheck.Test.make ~name:"io_semiexact success satisfies covering relations" ~count:100
    QCheck.(pair (int_bound 10_000) (int_range 4 8))
    (fun (seed, n) ->
      let groups = random_groups seed n 3 in
      let rng = Random.State.make [| seed; 42 |] in
      (* A small random DAG of covering relations (higher covers lower). *)
      let ocs = ref [] in
      for u = 1 to n - 1 do
        for v = 0 to u - 1 do
          if Random.State.int rng 6 = 0 then
            ocs := { Constraints.covering = u; covered = v } :: !ocs
        done
      done;
      let k = Ihybrid.min_code_length n + 1 in
      match Iexact.semiexact_code ~num_states:n ~k ~output_constraints:!ocs groups with
      | None -> true
      | Some codes ->
          let e = Encoding.make ~nbits:k codes in
          List.for_all (fun g -> Constraints.satisfied e g) groups
          && List.for_all (Constraints.oc_satisfied e) !ocs)

(* --- mincube_dim sanity over random instances --------------------------- *)

let prop_mincube_lower_bound =
  QCheck.Test.make ~name:"iexact answer >= mincube_dim (bound validity)" ~count:20
    QCheck.(pair (int_bound 1000) (int_range 4 7))
    (fun (seed, n) ->
      let groups = random_groups seed n 4 in
      match groups with
      | [] -> true
      | _ -> (
          let poset = Input_poset.build ~num_states:n groups in
          let bound = Input_poset.mincube_dim poset in
          match Iexact.iexact_code ~num_states:n ~max_work:200_000 groups with
          | Iexact.Sat { k; _ } -> k >= bound
          | Iexact.Exhausted -> true))

let suite =
  [
    Alcotest.test_case "project basic" `Quick test_project_basic;
    Alcotest.test_case "project requires ric" `Quick test_project_requires_ric;
    QCheck_alcotest.to_alcotest prop_project;
    Alcotest.test_case "ihybrid satisfiable" `Quick test_ihybrid_satisfiable;
    Alcotest.test_case "ihybrid projection growth" `Quick test_ihybrid_projection_growth;
    Alcotest.test_case "ihybrid no constraints" `Quick test_ihybrid_empty_constraints;
    Alcotest.test_case "min_code_length" `Quick test_min_code_length;
    QCheck_alcotest.to_alcotest prop_ihybrid_consistent;
    QCheck_alcotest.to_alcotest prop_ihybrid_full_space;
    QCheck_alcotest.to_alcotest prop_igreedy_consistent;
    Alcotest.test_case "igreedy nested family" `Quick test_igreedy_nested;
    Alcotest.test_case "out_encoder chain" `Quick test_out_encoder_chain;
    Alcotest.test_case "out_encoder diamond" `Quick test_out_encoder_diamond;
    Alcotest.test_case "out_encoder budget" `Quick test_out_encoder_budget;
    Alcotest.test_case "out_encoder cycle" `Quick test_out_encoder_cycle;
    QCheck_alcotest.to_alcotest prop_out_encoder;
    Alcotest.test_case "paper ENC satisfies Example 6.2.2" `Quick test_paper_solution_valid;
    Alcotest.test_case "iohybrid on Example 6.2.2" `Quick test_iohybrid_paper_example;
    Alcotest.test_case "iovariant runs" `Quick test_iovariant_runs;
    Alcotest.test_case "iohybrid pure-output fallback" `Quick test_iohybrid_pure_output;
    QCheck_alcotest.to_alcotest prop_semiexact_sound;
    QCheck_alcotest.to_alcotest prop_io_semiexact_sound;
    QCheck_alcotest.to_alcotest prop_mincube_lower_bound;
  ]
