(* Tests for constraint extraction and satisfaction semantics. *)

let check = Alcotest.(check bool)

let enc codes nbits = Encoding.make ~nbits (Array.of_list codes)

let test_face_of_states () =
  (* states 0,1 at codes 00,01 span face 0x: mask=0b10 (bit1 fixed to 0) *)
  let e = enc [ 0b00; 0b01; 0b10; 0b11 ] 2 in
  let mask, value = Constraints.face_of_states e (Bitvec.of_string "1100") in
  Alcotest.(check int) "mask keeps bit 1" 0b10 mask;
  Alcotest.(check int) "value 0" 0 value;
  let mask2, _ = Constraints.face_of_states e (Bitvec.of_string "1111") in
  Alcotest.(check int) "universe spans whole cube" 0 mask2;
  Alcotest.check_raises "empty group"
    (Invalid_argument "Constraints.face_of_states: empty constraint") (fun () ->
      ignore (Constraints.face_of_states e (Bitvec.create 4)))

let test_satisfied () =
  let e = enc [ 0b00; 0b01; 0b10; 0b11 ] 2 in
  (* {0,1} spans 0x which contains only codes 00,01: satisfied. *)
  check "adjacent pair" true (Constraints.satisfied e (Bitvec.of_string "1100"));
  (* {0,3} spans xx which contains 01 and 10: violated. *)
  check "diagonal pair" false (Constraints.satisfied e (Bitvec.of_string "1001"));
  (* singleton is always satisfied *)
  check "singleton" true (Constraints.satisfied e (Bitvec.of_string "0100"));
  (* universe is always satisfied *)
  check "universe" true (Constraints.satisfied e (Bitvec.of_string "1111"))

let test_satisfied_with_unused_codes () =
  (* 3 states in 2 bits: group {0,1} at 00,01 spans 0x; code 10 is state
     2's, 11 unused. Unused codes inside a face are fine. *)
  let e = enc [ 0b00; 0b10; 0b01 ] 2 in
  (* codes: s0=00 s1=10 s2=01; group {0,1} = codes 00,10 spans x0;
     x0 contains 00 and 10 only; s2=01 outside: satisfied. *)
  check "face with unused vertex" true (Constraints.satisfied e (Bitvec.of_string "110"));
  (* group {0,2} = codes 00,01 spans 0x; contains no other state code:
     satisfied. *)
  check "other pair" true (Constraints.satisfied e (Bitvec.of_string "101"));
  (* group {1,2} = codes 10,01 spans xx which contains s0: violated. *)
  check "spanning pair" false (Constraints.satisfied e (Bitvec.of_string "011"))

let test_weights () =
  let e = enc [ 0b00; 0b01; 0b10; 0b11 ] 2 in
  let ics =
    [
      { Constraints.states = Bitvec.of_string "1100"; weight = 3 };
      { Constraints.states = Bitvec.of_string "1001"; weight = 5 };
    ]
  in
  Alcotest.(check int) "weight of satisfied" 3 (Constraints.satisfied_weight e ics);
  Alcotest.(check int) "count of satisfied" 1 (Constraints.num_satisfied e ics)

let test_extraction_merges_duplicates () =
  (* Machine where states a and b behave identically: the minimized
     cover groups them, producing the constraint {a, b}. *)
  let t input src dst output = { Fsm.input; src = Some src; dst = Some dst; output } in
  let m =
    Fsm.create ~name:"merge" ~num_inputs:1 ~num_outputs:1
      ~states:[| "a"; "b"; "c"; "d" |]
      ~transitions:
        [
          t "0" 0 2 "1"; t "0" 1 2 "1";  (* a,b -0-> c / 1 *)
          t "1" 0 3 "0"; t "1" 1 3 "0";  (* a,b -1-> d / 0 *)
          t "0" 2 0 "0"; t "1" 2 1 "0";
          t "0" 3 1 "1"; t "1" 3 0 "1";
        ]
      ()
  in
  let ics = Constraints.of_symbolic (Symbolic.of_fsm m) in
  check "found the {a,b} group" true
    (List.exists
       (fun (ic : Constraints.input_constraint) ->
         Bitvec.equal ic.Constraints.states (Bitvec.of_string "1100"))
       ics);
  let ab =
    List.find
      (fun (ic : Constraints.input_constraint) ->
        Bitvec.equal ic.Constraints.states (Bitvec.of_string "1100"))
      ics
  in
  check "merged weight >= 2" true (ab.Constraints.weight >= 2)

let test_output_constraints () =
  let e = enc [ 0b00; 0b01; 0b11 ] 2 in
  check "1 covers 0" true (Constraints.oc_satisfied e { Constraints.covering = 1; covered = 0 });
  check "2 covers 1" true (Constraints.oc_satisfied e { Constraints.covering = 2; covered = 1 });
  check "0 does not cover 1" false
    (Constraints.oc_satisfied e { Constraints.covering = 0; covered = 1 });
  check "self covering is strict" false
    (Constraints.oc_satisfied e { Constraints.covering = 1; covered = 1 });
  let cluster =
    {
      Constraints.next_state = 0;
      edges = [ { Constraints.covering = 1; covered = 0 }; { Constraints.covering = 2; covered = 0 } ];
      oc_weight = 2;
      companion = [];
    }
  in
  check "cluster satisfied" true (Constraints.cluster_satisfied e cluster);
  let bad =
    { cluster with Constraints.edges = { Constraints.covering = 0; covered = 2 } :: cluster.Constraints.edges }
  in
  check "cluster violated" false (Constraints.cluster_satisfied e bad)

(* Property: satisfaction is monotone under the projection construction
   of Proposition 4.2.1 — padding a satisfied group with 1s and the rest
   with 0s preserves satisfaction of all previously satisfied groups. *)
let prop_projection_preserves =
  QCheck.Test.make ~name:"padding preserves satisfied constraints (Prop 4.2.1)" ~count:200
    QCheck.(triple (int_bound 1000) (int_range 4 8) (int_bound 1000))
    (fun (seed, n, gseed) ->
      let rng = Random.State.make [| seed |] in
      let nbits = Ihybrid.min_code_length n in
      let e = Encoding.random rng ~num_states:n ~nbits in
      let grng = Random.State.make [| gseed |] in
      let group = Bitvec.create n in
      for s = 0 to n - 1 do
        if Random.State.bool grng then Bitvec.set group s
      done;
      if Bitvec.is_empty group then true
      else begin
        (* collect satisfied groups among some random ones, then project *)
        let groups =
          List.init 6 (fun i ->
              let g = Bitvec.create n in
              let r = Random.State.make [| gseed; i |] in
              for s = 0 to n - 1 do
                if Random.State.bool r then Bitvec.set g s
              done;
              g)
          |> List.filter (fun g -> not (Bitvec.is_empty g))
        in
        let sat = List.filter (Constraints.satisfied e) groups in
        let codes' =
          Array.mapi
            (fun s c -> if Bitvec.get group s then c lor (1 lsl nbits) else c)
            e.Encoding.codes
        in
        let e' = Encoding.make ~nbits:(nbits + 1) codes' in
        List.for_all (Constraints.satisfied e') sat
        && Constraints.satisfied e' group
      end)

let suite =
  [
    Alcotest.test_case "face_of_states" `Quick test_face_of_states;
    Alcotest.test_case "satisfied" `Quick test_satisfied;
    Alcotest.test_case "satisfied with unused codes" `Quick test_satisfied_with_unused_codes;
    Alcotest.test_case "weights" `Quick test_weights;
    Alcotest.test_case "extraction merges duplicates" `Quick test_extraction_merges_duplicates;
    Alcotest.test_case "output constraints" `Quick test_output_constraints;
    QCheck_alcotest.to_alcotest prop_projection_preserves;
  ]
