(* Property tests for the face algebra and the input poset invariants. *)

let gen_face k =
  QCheck.Gen.(
    int_bound ((1 lsl k) - 1) >>= fun mask ->
    int_bound ((1 lsl k) - 1) >>= fun bits -> return (Face.make k ~mask ~bits))

let gen_k_faces =
  QCheck.make
    ~print:(fun (k, f, g) -> Printf.sprintf "k=%d %s %s" k (Face.to_string k f) (Face.to_string k g))
    QCheck.Gen.(
      int_range 1 6 >>= fun k ->
      gen_face k >>= fun f ->
      gen_face k >>= fun g -> return (k, f, g))

let prop_inter_is_set_intersection =
  QCheck.Test.make ~name:"face inter = vertex-set intersection" ~count:300 gen_k_faces
    (fun (k, f, g) ->
      let vf = Face.vertices k f and vg = Face.vertices k g in
      let expected = List.filter (fun v -> List.mem v vg) vf in
      match Face.inter f g with
      | None -> expected = []
      | Some h -> List.sort compare (Face.vertices k h) = List.sort compare expected)

let prop_contains_is_subset =
  QCheck.Test.make ~name:"face contains = vertex-set inclusion" ~count:300 gen_k_faces
    (fun (k, f, g) ->
      let vf = Face.vertices k f and vg = Face.vertices k g in
      Face.contains f g = List.for_all (fun v -> List.mem v vf) vg)

let prop_supercube_minimal =
  QCheck.Test.make ~name:"supercube = smallest face over the union of vertices" ~count:300
    gen_k_faces (fun (k, f, g) ->
      let sc = Face.supercube f g in
      (* Folding vertex-by-vertex must give the same face: the supercube
         of a set of points is determined by which bits vary. *)
      let all = Face.vertices k f @ Face.vertices k g in
      match all with
      | [] -> false
      | v :: rest ->
          let built = List.fold_left (fun acc u -> Face.supercube acc (Face.vertex k u)) (Face.vertex k v) rest in
          Face.equal sc built && Face.contains sc f && Face.contains sc g)

let prop_vertices_count =
  QCheck.Test.make ~name:"face has 2^level vertices, all on the face" ~count:300 gen_k_faces
    (fun (k, f, _) ->
      let vs = Face.vertices k f in
      List.length vs = Face.cardinality k f
      && List.for_all (Face.contains_code f) vs
      && List.length (List.sort_uniq compare vs) = List.length vs)

let prop_enumeration_complete =
  QCheck.Test.make ~name:"faces_at_level enumerates C(k,l)*2^(k-l) distinct faces" ~count:50
    QCheck.(pair (int_range 1 5) (int_range 0 5))
    (fun (k, l) ->
      l > k
      ||
      let faces = List.of_seq (Face.faces_at_level k l) in
      let rec binom n r = if r = 0 || r = n then 1 else binom (n - 1) (r - 1) + binom (n - 1) r in
      List.length faces = binom k l * (1 lsl (k - l))
      && List.length (List.sort_uniq Face.compare faces) = List.length faces
      && List.for_all (fun f -> Face.level k f = l) faces)

let prop_subfaces_within =
  QCheck.Test.make ~name:"subfaces lie inside, superfaces contain" ~count:200 gen_k_faces
    (fun (k, f, _) ->
      let lf = Face.level k f in
      (lf = 0
      || List.for_all (fun s -> Face.contains f s) (List.of_seq (Face.subfaces_at_level k f (lf - 1)))
      )
      && (lf = k
         || List.for_all (fun s -> Face.contains s f)
              (List.of_seq (Face.superfaces_at_level k f (lf + 1)))))

(* --- input poset -------------------------------------------------------- *)

let gen_instance =
  QCheck.make
    ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
    QCheck.Gen.(pair (int_range 3 9) (int_bound 100_000))

let groups_of (n, seed) =
  let rng = Random.State.make [| seed |] in
  List.init 5 (fun _ ->
      let g = Bitvec.create n in
      for s = 0 to n - 1 do
        if Random.State.int rng 3 = 0 then Bitvec.set g s
      done;
      g)
  |> List.filter (fun g -> not (Bitvec.is_empty g))

let prop_closure_closed =
  QCheck.Test.make ~name:"input poset closed under intersection" ~count:150 gen_instance
    (fun (n, seed) ->
      let poset = Input_poset.build ~num_states:n (groups_of (n, seed)) in
      let elems = Array.to_list poset.Input_poset.elements in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              let i = Bitvec.inter a.Input_poset.states b.Input_poset.states in
              Bitvec.is_empty i || Input_poset.find poset i <> None)
            elems)
        elems)

let prop_fathers_minimal =
  QCheck.Test.make ~name:"fathers are minimal strict supersets" ~count:150 gen_instance
    (fun (n, seed) ->
      let poset = Input_poset.build ~num_states:n (groups_of (n, seed)) in
      let elems = poset.Input_poset.elements in
      Array.for_all
        (fun e ->
          List.for_all
            (fun fid ->
              let f = elems.(fid) in
              let strict a b = Bitvec.subset b a && not (Bitvec.equal a b) in
              strict f.Input_poset.states e.Input_poset.states
              && not
                   (Array.exists
                      (fun g ->
                        g.Input_poset.id <> fid && g.Input_poset.id <> e.Input_poset.id
                        && strict f.Input_poset.states g.Input_poset.states
                        && strict g.Input_poset.states e.Input_poset.states)
                      elems))
            e.Input_poset.fathers)
        elems)

let prop_categories_consistent =
  QCheck.Test.make ~name:"categories match father structure" ~count:150 gen_instance
    (fun (n, seed) ->
      let poset = Input_poset.build ~num_states:n (groups_of (n, seed)) in
      Array.for_all
        (fun e ->
          match (e.Input_poset.category, e.Input_poset.fathers) with
          | 0, [] -> e.Input_poset.id = poset.Input_poset.universe
          | 1, [ f ] -> f = poset.Input_poset.universe
          | 2, _ :: _ :: _ -> true
          | 3, [ f ] -> f <> poset.Input_poset.universe
          | _, _ -> false)
        poset.Input_poset.elements)

let prop_singletons_and_universe_present =
  QCheck.Test.make ~name:"closure contains universe and all singletons" ~count:150 gen_instance
    (fun (n, seed) ->
      let poset = Input_poset.build ~num_states:n (groups_of (n, seed)) in
      Input_poset.find poset (Bitvec.full n) <> None
      && List.for_all
           (fun s -> Input_poset.find poset (Bitvec.of_list n [ s ]) <> None)
           (List.init n (fun s -> s)))

let prop_mincube_at_least_log =
  QCheck.Test.make ~name:"mincube_dim >= ceil log2 n" ~count:150 gen_instance
    (fun (n, seed) ->
      let poset = Input_poset.build ~num_states:n (groups_of (n, seed)) in
      let rec bits k acc = if acc >= n then k else bits (k + 1) (acc * 2) in
      Input_poset.mincube_dim poset >= bits 0 1)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_inter_is_set_intersection;
    QCheck_alcotest.to_alcotest prop_contains_is_subset;
    QCheck_alcotest.to_alcotest prop_supercube_minimal;
    QCheck_alcotest.to_alcotest prop_vertices_count;
    QCheck_alcotest.to_alcotest prop_enumeration_complete;
    QCheck_alcotest.to_alcotest prop_subfaces_within;
    QCheck_alcotest.to_alcotest prop_closure_closed;
    QCheck_alcotest.to_alcotest prop_fathers_minimal;
    QCheck_alcotest.to_alcotest prop_categories_consistent;
    QCheck_alcotest.to_alcotest prop_singletons_and_universe_present;
    QCheck_alcotest.to_alcotest prop_mincube_at_least_log;
  ]
