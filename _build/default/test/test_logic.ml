(* Unit and property tests for the multiple-valued logic kernel. *)

open Logic

let dom_bb = Domain.create [| 2; 2 |]
let dom_bbb = Domain.create [| 2; 2; 2 |]
let dom_mv = Domain.create [| 2; 3; 2 |]

(* Build a cube from a per-variable list of parts; [] means full field. *)
let cube dom fields =
  List.fold_left
    (fun c (v, parts) -> if parts = [] then c else Cube.set_var dom c v parts)
    (Cube.full dom)
    (List.mapi (fun v parts -> (v, parts)) fields)

let check = Alcotest.(check bool)

let test_cube_basics () =
  let c = cube dom_mv [ [ 0 ]; [ 1; 2 ]; [] ] in
  check "not empty" false (Cube.is_empty dom_mv c);
  check "not full" false (Cube.is_full dom_mv c);
  Alcotest.(check (list int)) "var 0" [ 0 ] (Cube.var_bits dom_mv c 0);
  Alcotest.(check (list int)) "var 1" [ 1; 2 ] (Cube.var_bits dom_mv c 1);
  check "var 2 full" true (Cube.var_full dom_mv c 2);
  Alcotest.(check int) "minterms 1*2*2" 4 (Cube.num_minterms dom_mv c);
  Alcotest.(check int) "literal bits" 3 (Cube.num_literal_bits dom_mv c)

let test_cube_intersection () =
  let a = cube dom_mv [ [ 0 ]; [ 0; 1 ]; [] ] in
  let b = cube dom_mv [ []; [ 1; 2 ]; [ 0 ] ] in
  (match Cube.inter dom_mv a b with
  | None -> Alcotest.fail "expected nonempty intersection"
  | Some i ->
      Alcotest.(check (list int)) "var1 of inter" [ 1 ] (Cube.var_bits dom_mv i 1);
      Alcotest.(check (list int)) "var2 of inter" [ 0 ] (Cube.var_bits dom_mv i 2));
  let c = cube dom_mv [ [ 1 ]; []; [] ] in
  check "disjoint in var0" false (Cube.intersects dom_mv a c);
  Alcotest.(check int) "distance a c" 1 (Cube.distance dom_mv a c)

let test_cube_cofactor () =
  let a = cube dom_bb [ [ 0 ]; [] ] in
  let wrt = cube dom_bb [ [ 0 ]; [ 1 ] ] in
  (match Cube.cofactor dom_bb a ~wrt with
  | None -> Alcotest.fail "expected cofactor"
  | Some cf -> check "cofactor is full" true (Cube.is_full dom_bb cf));
  let b = cube dom_bb [ [ 1 ]; [] ] in
  check "no cofactor when disjoint" true (Cube.cofactor dom_bb b ~wrt = None)

let test_minterm_containment () =
  let c = cube dom_mv [ [ 0 ]; [ 1; 2 ]; [] ] in
  let m = Cube.of_minterm dom_mv [| 0; 2; 1 |] in
  check "contains its minterm" true (Cube.contains c m);
  let m2 = Cube.of_minterm dom_mv [| 1; 2; 1 |] in
  check "excludes others" false (Cube.contains c m2)

(* xor(a,b): on-set = a'b + ab' *)
let xor_cover =
  Cover.make dom_bb [ cube dom_bb [ [ 0 ]; [ 1 ] ]; cube dom_bb [ [ 1 ]; [ 0 ] ] ]

let test_tautology () =
  check "xor not tautology" false (Cover.tautology xor_cover);
  let full = Cover.universe dom_bb in
  check "universe tautology" true (Cover.tautology full);
  let both_halves =
    Cover.make dom_bb [ cube dom_bb [ [ 0 ]; [] ]; cube dom_bb [ [ 1 ]; [] ] ]
  in
  check "a + a' tautology" true (Cover.tautology both_halves);
  check "empty not tautology" false (Cover.tautology (Cover.empty dom_bb))

let test_complement_xor () =
  let xnor = Cover.complement xor_cover in
  Alcotest.(check int) "xnor has 2 cubes" 2 (Cover.size xnor);
  check "xor and xnor disjoint" true (Cover.size (Cover.intersect xor_cover xnor) = 0);
  check "xor + xnor tautology" true (Cover.tautology (Cover.union xor_cover xnor));
  Alcotest.(check int) "minterm split" 2 (Cover.num_minterms xnor);
  Alcotest.(check int) "xor minterms" 2 (Cover.num_minterms xor_cover)

let test_covers () =
  let f = Cover.make dom_bbb [ cube dom_bbb [ [ 0 ]; []; [] ] ] in
  let g =
    Cover.make dom_bbb [ cube dom_bbb [ [ 0 ]; [ 0 ]; [] ]; cube dom_bbb [ [ 0 ]; [ 1 ]; [ 1 ] ] ]
  in
  check "f covers g" true (Cover.covers f g);
  check "g does not cover f" false (Cover.covers g f);
  check "f equivalent f" true (Cover.equivalent f f)

let test_supercube () =
  let f =
    Cover.make dom_mv [ cube dom_mv [ [ 0 ]; [ 0 ]; [ 0 ] ]; cube dom_mv [ [ 0 ]; [ 2 ]; [ 1 ] ] ]
  in
  match Cover.supercube f with
  | None -> Alcotest.fail "expected supercube"
  | Some sc ->
      Alcotest.(check (list int)) "var0" [ 0 ] (Cube.var_bits dom_mv sc 0);
      Alcotest.(check (list int)) "var1" [ 0; 2 ] (Cube.var_bits dom_mv sc 1);
      check "var2 full" true (Cube.var_full dom_mv sc 2)

let test_scc () =
  let small = cube dom_bb [ [ 0 ]; [ 0 ] ] in
  let big = cube dom_bb [ [ 0 ]; [] ] in
  let f = Cover.make dom_bb [ small; big; small ] in
  let r = Cover.single_cube_containment f in
  Alcotest.(check int) "only the big cube remains" 1 (Cover.size r);
  check "kept the big one" true (List.exists (fun c -> Cube.equal c big) r.Cover.cubes)

(* Property tests -------------------------------------------------------- *)

let gen_sizes = QCheck.Gen.(list_size (int_range 1 4) (int_range 2 4))

let gen_cover_in dom =
  let n = Domain.num_vars dom in
  QCheck.Gen.(
    list_size (int_bound 6) (
      (* one random non-empty part subset per variable *)
      let gen_cube =
        let rec fields v acc =
          if v = n then return (List.rev acc)
          else
            let sz = Domain.size dom v in
            list_size (int_range 1 sz) (int_bound (sz - 1)) >>= fun parts ->
            fields (v + 1) (List.sort_uniq compare parts :: acc)
        in
        fields 0 [] >>= fun fields ->
        return
          (List.fold_left
             (fun c (v, parts) -> Cube.set_var dom c v parts)
             (Cube.full dom)
             (List.mapi (fun v parts -> (v, parts)) fields))
      in
      gen_cube))

let gen_domain_cover =
  QCheck.make
    ~print:(fun (sizes, _) ->
      Printf.sprintf "dom=[%s]" (String.concat ";" (List.map string_of_int sizes)))
    QCheck.Gen.(
      gen_sizes >>= fun sizes ->
      let dom = Domain.create (Array.of_list sizes) in
      gen_cover_in dom >>= fun cubes -> return (sizes, cubes))

let cover_of (sizes, cubes) = Cover.make (Domain.create (Array.of_list sizes)) cubes

let prop_complement_partition =
  QCheck.Test.make ~name:"F and ¬F partition the space" ~count:100 gen_domain_cover (fun dc ->
      let f = cover_of dc in
      let nf = Cover.complement f in
      Cover.tautology (Cover.union f nf)
      && Cover.size (Cover.intersect f nf) = 0
      && Cover.num_minterms f + Cover.num_minterms nf = Domain.num_minterms f.Cover.dom)

let prop_complement_involution =
  QCheck.Test.make ~name:"¬¬F ≡ F" ~count:100 gen_domain_cover (fun dc ->
      let f = cover_of dc in
      Cover.equivalent f (Cover.complement (Cover.complement f)))

let prop_scc_preserves =
  QCheck.Test.make ~name:"single-cube containment preserves the function" ~count:100
    gen_domain_cover (fun dc ->
      let f = cover_of dc in
      Cover.equivalent f (Cover.single_cube_containment f))

let prop_covers_reflexive =
  QCheck.Test.make ~name:"every cover covers its own cubes" ~count:100 gen_domain_cover
    (fun dc ->
      let f = cover_of dc in
      List.for_all (fun c -> Cover.covers_cube f c) f.Cover.cubes)

let prop_tautology_definition =
  QCheck.Test.make ~name:"tautology iff covers all minterms" ~count:100 gen_domain_cover
    (fun dc ->
      let f = cover_of dc in
      Cover.tautology f = (Cover.num_minterms f = Domain.num_minterms f.Cover.dom))

let prop_complement_within =
  QCheck.Test.make ~name:"complement_within space ∧ ¬F" ~count:100
    (QCheck.pair gen_domain_cover gen_domain_cover) (fun (dc1, (_, cubes2)) ->
      let f = cover_of dc1 in
      match cubes2 with
      | [] -> true
      | _ ->
          (* reuse a cube shape from f's own domain *)
          let space = Cube.full f.Cover.dom in
          let cw = Cover.complement_within f ~space in
          Cover.equivalent cw (Cover.complement f))

let suite =
  [
    Alcotest.test_case "cube basics" `Quick test_cube_basics;
    Alcotest.test_case "cube intersection/distance" `Quick test_cube_intersection;
    Alcotest.test_case "cube cofactor" `Quick test_cube_cofactor;
    Alcotest.test_case "minterm containment" `Quick test_minterm_containment;
    Alcotest.test_case "tautology" `Quick test_tautology;
    Alcotest.test_case "complement of xor" `Quick test_complement_xor;
    Alcotest.test_case "cover containment" `Quick test_covers;
    Alcotest.test_case "supercube" `Quick test_supercube;
    Alcotest.test_case "single cube containment" `Quick test_scc;
    QCheck_alcotest.to_alcotest prop_complement_partition;
    QCheck_alcotest.to_alcotest prop_complement_involution;
    QCheck_alcotest.to_alcotest prop_scc_preserves;
    QCheck_alcotest.to_alcotest prop_covers_reflexive;
    QCheck_alcotest.to_alcotest prop_tautology_definition;
    QCheck_alcotest.to_alcotest prop_complement_within;
  ]
