(* A serial sequence detector, built programmatically, encoded exactly.

   Run with:  dune exec examples/sequence_detector.exe -- [pattern]

   The machine recognizes a bit pattern (default 11010) on a serial
   input, asserting the output on a match — a textbook FSM whose states
   are the lengths of the matched prefix. Because the machine is small,
   the exact algorithm iexact_code terminates and we can observe the
   face hypercube embedding itself: every input constraint is mapped to
   a face of the minimum-dimension cube. *)

let build_detector pattern =
  let k = String.length pattern in
  (* State i = longest matched prefix has length i; 0 <= i <= k - 1.
     KMP-style: extend the prefix on a match, else fall back to the
     longest prefix that is also a suffix of what was just read. *)
  let next i bit =
    let extended = String.sub pattern 0 i ^ String.make 1 bit in
    let rec longest l =
      if l = 0 then 0
      else if l <= i + 1 && String.sub pattern 0 l = String.sub extended (i + 1 - l) l then l
      else longest (l - 1)
    in
    if pattern.[i] = bit then i + 1 else longest i
  in
  let transitions =
    List.concat_map
      (fun i ->
        List.map
          (fun bit ->
            let n = next i bit in
            let accept = n = k in
            {
              Fsm.input = String.make 1 bit;
              src = Some i;
              dst = Some (if accept then 0 else n);
              output = (if accept then "1" else "0");
            })
          [ '0'; '1' ])
      (List.init k (fun i -> i))
  in
  Fsm.create ~name:"detector" ~num_inputs:1 ~num_outputs:1
    ~states:(Array.init k (fun i -> Printf.sprintf "p%d" i))
    ~transitions ~reset:0 ()

let () =
  let pattern = if Array.length Sys.argv > 1 then Sys.argv.(1) else "11010" in
  assert (String.for_all (fun c -> c = '0' || c = '1') pattern);
  let machine = build_detector pattern in
  let n = Fsm.num_states ~m:machine in
  Printf.printf "detector for %s: %d states\n\n%s\n" pattern n (Kiss.to_string machine);

  let sym = Symbolic.of_fsm machine in
  let ics = Constraints.of_symbolic sym in
  let groups = List.map (fun (ic : Constraints.input_constraint) -> ic.Constraints.states) ics in

  (* The exact algorithm: all constraints satisfied, minimum length. *)
  (match Iexact.iexact_code ~num_states:n groups with
  | Iexact.Exhausted -> Printf.printf "iexact: work budget exhausted\n"
  | Iexact.Sat { k; codes; _ } ->
      Printf.printf "iexact: all %d constraints satisfiable in %d bits\n" (List.length ics) k;
      let e = Encoding.make ~nbits:k codes in
      List.iter
        (fun (ic : Constraints.input_constraint) ->
          let mask, value = Constraints.face_of_states e ic.Constraints.states in
          let face = Face.make k ~mask ~bits:value in
          Printf.printf "  constraint {%s} spans face %s\n"
            (String.concat ","
               (List.map (fun s -> machine.Fsm.states.(s)) (Bitvec.to_list ic.Constraints.states)))
            (Face.to_string k face))
        ics;
      let r = Encoded.implement machine e in
      Printf.printf "  implementation: %d cubes, area %d\n\n" r.Encoded.num_cubes r.Encoded.area);

  (* And the heuristic flow for comparison. *)
  let ih = Ihybrid.ihybrid_code ~num_states:n ics in
  let r = Encoded.implement machine ih.Ihybrid.encoding in
  let oh = Encoded.implement machine (Encoding.one_hot n) in
  Printf.printf "ihybrid: %d bits, %d cubes, area %d (1-hot: %d cubes, area %d)\n"
    ih.Ihybrid.encoding.Encoding.nbits r.Encoded.num_cubes r.Encoded.area oh.Encoded.num_cubes
    oh.Encoded.area
