(* Opcode assignment — the paper's canonical class-A encoding problem
   ("the optimal assignment of opcodes for a microprocessor",
   Section 2.1).

   Run with:  dune exec examples/opcode_assignment.exe

   A toy CPU decoder maps each instruction mnemonic to control signals.
   The mnemonics are values of one symbolic input variable; minimizing
   the decoder's multiple-valued cover groups the instructions that share
   control signals, and those groups are exactly the input constraints of
   face hypercube embedding. NOVA's class-A algorithms then choose the
   opcodes. Note there is no state here at all: the encoding machinery
   works on any symbolic variable.

   We model the decoder as a "machine" whose present-state variable is
   the instruction (a pure combinational table: next state unspecified,
   outputs = control signals). *)

let instructions =
  [|
    "ADD"; "ADC"; "SUB"; "SBC"; "AND"; "OR"; "XOR"; "NOT";
    "LD"; "LDI"; "ST"; "STI"; "JMP"; "JZ"; "JC"; "HLT";
  |]

(* Control signals: alu_en, reg_wr, mem_rd, mem_wr, pc_load, flag_use,
   imm_sel, halt. Whole instruction families share a pattern — the
   structure the encoding should exploit. *)
let control = function
  | "ADD" | "ADC" | "SUB" | "SBC" | "AND" | "OR" | "XOR" | "NOT" -> "11000000"
  | "LD" -> "01100000"
  | "LDI" -> "01100010"
  | "ST" -> "00010000"
  | "STI" -> "00010010"
  | "JMP" -> "00001000"
  | "JZ" | "JC" -> "00001100"
  | "HLT" -> "00000001"
  | _ -> assert false

let decoder =
  let transitions =
    Array.to_list
      (Array.mapi
         (fun i name -> { Fsm.input = ""; src = Some i; dst = None; output = control name })
         instructions)
  in
  Fsm.create ~name:"decoder" ~num_inputs:0 ~num_outputs:8 ~states:instructions ~transitions ()

let () =
  let n = Array.length instructions in
  let sym = Symbolic.of_fsm decoder in
  let ics = Constraints.of_symbolic sym in
  Printf.printf "instruction groups sharing control signals (input constraints):\n";
  List.iter
    (fun (ic : Constraints.input_constraint) ->
      Printf.printf "  {%s} weight %d\n"
        (String.concat ", " (List.map (fun s -> instructions.(s)) (Bitvec.to_list ic.Constraints.states)))
        ic.Constraints.weight)
    ics;

  (* Exact encoding when it completes, hybrid otherwise. *)
  let groups = List.map (fun (ic : Constraints.input_constraint) -> ic.Constraints.states) ics in
  let encoding =
    match Iexact.iexact_code ~num_states:n ~max_work:500_000 groups with
    | Iexact.Sat { k; codes; proven } ->
        Printf.printf "\niexact: all groups embeddable in %d bits%s\n" k
          (if proven then "" else " (minimality not proven)");
        Encoding.make ~nbits:k codes
    | Iexact.Exhausted ->
        Printf.printf "\niexact exhausted; falling back to ihybrid\n";
        (Ihybrid.ihybrid_code ~num_states:n ics).Ihybrid.encoding
  in
  Printf.printf "\nopcode assignment:\n";
  Array.iteri
    (fun i name -> Printf.printf "  %-4s %s\n" name (Encoding.code_string encoding i))
    instructions;

  (* The payoff: decoder PLA sizes under this assignment vs naive ones. *)
  let report label e =
    let r = Encoded.implement decoder e in
    Printf.printf "  %-14s %d bits %2d product terms  area %4d\n" label e.Encoding.nbits
      r.Encoded.num_cubes r.Encoded.area
  in
  Printf.printf "\ndecoder implementations:\n";
  report "iexact" encoding;
  report "ihybrid(min)" (Ihybrid.ihybrid_code ~num_states:n ics).Ihybrid.encoding;
  report "sequential" (Encoding.make ~nbits:(Ihybrid.min_code_length n) (Array.init n (fun i -> i)));
  report "1-hot" (Encoding.one_hot n);
  let rng = Random.State.make [| 2 |] in
  report "random" (Encoding.random rng ~num_states:n ~nbits:(Ihybrid.min_code_length n))
