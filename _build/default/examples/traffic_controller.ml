(* A traffic-light controller — the classic FSM synthesis workload.

   Run with:  dune exec examples/traffic_controller.exe

   A two-road intersection: a main road and a farm road with a vehicle
   sensor, plus a timer with short/long expiry signals. This is the kind
   of control logic the paper's introduction motivates: a handful of
   symbolic states, structured transitions, and a PLA implementation
   whose area depends heavily on the state codes.

   Inputs:  c  - car waiting on the farm road
            ts - short timer expired
            tl - long timer expired
   Outputs: main road light (green/yellow/red one-hot),
            farm road light (green/yellow/red one-hot),
            start-timer pulse. *)

let states = [| "MG"; "MY"; "FG"; "FY" |]

let t input src dst output = { Fsm.input; src = Some src; dst = Some dst; output }

let machine =
  (* input = c ts tl; output = mg my mr fg fy fr st *)
  let mg = 0 and my = 1 and fg = 2 and fy = 3 in
  Fsm.create ~name:"traffic" ~num_inputs:3 ~num_outputs:7 ~states
    ~transitions:
      [
        (* Main green: stay until a car waits and the long timer expired. *)
        t "0--" mg mg "1000011";
        t "-0-" mg mg "1000011";
        t "--0" mg mg "1000011";
        t "111" mg my "1000011";
        (* Main yellow: to farm green when the short timer expires. *)
        t "-0-" my my "0100011";
        t "-1-" my fg "0100011";
        (* Farm green: back when the car leaves or the long timer expires. *)
        t "1-0" fg fg "0011000";
        t "0--" fg fy "0011001";
        t "1-1" fg fy "0011001";
        (* Farm yellow: to main green when the short timer expires. *)
        t "-0-" fy fy "0010101";
        t "-1-" fy mg "0010101";
      ]
    ~reset:0 ()

let () =
  let n = Fsm.num_states ~m:machine in
  Printf.printf "%s\n" (Kiss.to_string machine);

  (* Full NOVA flow: input constraints, symbolic minimization, encodings. *)
  let sym = Symbolic.of_fsm machine in
  let ics = Constraints.of_symbolic sym in
  let sm = Symbmin.run sym in
  Printf.printf "input constraints: %d; symbolic cover upper bound: %d terms; covering edges: %d\n\n"
    (List.length ics) (Symbmin.upper_bound sm)
    (List.length sm.Symbmin.graph);

  let implementations =
    [
      ("ihybrid", (Ihybrid.ihybrid_code ~num_states:n ics).Ihybrid.encoding);
      ("igreedy", (Igreedy.igreedy_code ~num_states:n ics).Igreedy.encoding);
      ("iohybrid", (Iohybrid.iohybrid_code sm.Symbmin.problem).Iohybrid.encoding);
      ("1-hot", Encoding.one_hot n);
      ( "random",
        Encoding.random (Random.State.make [| 7 |]) ~num_states:n
          ~nbits:(Fsm.min_code_length machine) );
    ]
  in
  Printf.printf "%-10s %5s %7s %6s\n" "algorithm" "#bits" "#cubes" "area";
  List.iter
    (fun (label, e) ->
      let r = Encoded.implement machine e in
      Printf.printf "%-10s %5d %7d %6d\n" label e.Encoding.nbits r.Encoded.num_cubes
        r.Encoded.area)
    implementations;

  (* Sanity: simulate the encoded machine against the symbolic one. *)
  let e = (Ihybrid.ihybrid_code ~num_states:n ics).Ihybrid.encoding in
  let enc = Encoded.build machine e in
  let cover = Encoded.minimize enc in
  let mismatches = ref 0 and checked = ref 0 in
  for s = 0 to n - 1 do
    List.iter
      (fun input ->
        match Fsm.next machine ~input ~src:s with
        | Some (Some dst, out) ->
            incr checked;
            let next_code, outputs = Encoded.eval enc cover ~input ~code:(Encoding.code e s) in
            if next_code <> Encoding.code e dst then incr mismatches;
            String.iteri
              (fun j ch ->
                match ch with
                | '1' -> if not outputs.(j) then incr mismatches
                | '0' -> if outputs.(j) then incr mismatches
                | _ -> ())
              out
        | Some (None, _) | None -> ())
      [ "000"; "001"; "010"; "011"; "100"; "101"; "110"; "111" ]
  done;
  Printf.printf "\nsimulation cross-check: %d transitions verified, %d mismatches\n" !checked
    !mismatches;
  if !mismatches > 0 then exit 1
