(* Quickstart: encode the states of a small FSM and see the area win.

   Run with:  dune exec examples/quickstart.exe

   The machine is given in KISS2 format, the format the original NOVA
   consumed. The flow is the paper's: extract input constraints by
   multiple-valued minimization, encode with ihybrid_code, implement the
   encoded PLA with ESPRESSO, and compare against 1-hot and a random
   assignment. *)

let kiss2_text =
  {|
.i 2
.o 1
.s 4
.p 12
.r idle
00 idle idle 0
01 idle load 0
10 idle idle 0
11 idle load 0
0- load run  1
1- load idle 0
-0 run  run  1
-1 run  done 1
00 done idle 0
01 done load 0
10 done idle 0
11 done idle 0
.e
|}

let () =
  (* Parse the state transition table. *)
  let machine = Kiss.parse ~name:"quickstart" kiss2_text in
  let n = Fsm.num_states ~m:machine in
  Printf.printf "machine %s: %d states, %d inputs, %d outputs\n\n" machine.Fsm.name n
    machine.Fsm.num_inputs machine.Fsm.num_outputs;

  (* Step 1: multiple-valued minimization gives the input constraints. *)
  let sym = Symbolic.of_fsm machine in
  let ics = Constraints.of_symbolic sym in
  Printf.printf "input constraints (groups of states to place on a face):\n";
  List.iter
    (fun (ic : Constraints.input_constraint) ->
      Printf.printf "  {%s} weight %d\n"
        (String.concat ", "
           (List.map (fun s -> machine.Fsm.states.(s)) (Bitvec.to_list ic.Constraints.states)))
        ic.Constraints.weight)
    ics;

  (* Step 2: encode with the hybrid algorithm. *)
  let result = Ihybrid.ihybrid_code ~num_states:n ics in
  let encoding = result.Ihybrid.encoding in
  Printf.printf "\nihybrid encoding (%d bits, %d of %d constraints satisfied):\n"
    encoding.Encoding.nbits
    (List.length result.Ihybrid.satisfied)
    (List.length ics);
  Array.iteri
    (fun s name -> Printf.printf "  %-6s -> %s\n" name (Encoding.code_string encoding s))
    machine.Fsm.states;

  (* Step 3: implement and compare. NOVA's tables report the program's
     best solution, so we run the greedy algorithm and the symbolic
     (input + output constraint) flow too and keep the minimum. *)
  let area e = (Encoded.implement machine e).Encoded.area in
  let report label e =
    let r = Encoded.implement machine e in
    Printf.printf "  %-12s %d bits, %2d product terms, PLA area %4d\n" label
      e.Encoding.nbits r.Encoded.num_cubes r.Encoded.area
  in
  let greedy = (Igreedy.igreedy_code ~num_states:n ics).Igreedy.encoding in
  let io =
    let sm = Symbmin.run sym in
    (Iohybrid.iohybrid_code sm.Symbmin.problem).Iohybrid.encoding
  in
  let nova_best =
    List.fold_left
      (fun best e -> if area e < area best then e else best)
      encoding [ greedy; io ]
  in
  Printf.printf "\ntwo-level implementations:\n";
  report "ihybrid" encoding;
  report "igreedy" greedy;
  report "iohybrid" io;
  report "best of NOVA" nova_best;
  report "1-hot" (Encoding.one_hot n);
  report "random"
    (Encoding.random (Random.State.make [| 42 |]) ~num_states:n
       ~nbits:encoding.Encoding.nbits)
