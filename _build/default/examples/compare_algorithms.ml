(* Compare every encoding algorithm on a benchmark machine.

   Run with:  dune exec examples/compare_algorithms.exe -- [machine]

   Runs the whole zoo — NOVA's four algorithms, the KISS and MUSTANG
   baselines, 1-hot and random — on one machine from the built-in suite
   (default dk17) and prints the two-level and multilevel costs of each,
   a single-machine slice of the paper's Tables II-VII. *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "dk17" in
  let machine = Benchmarks.Suite.find name in
  let n = Fsm.num_states ~m:machine in
  let min_len = Fsm.min_code_length machine in
  Printf.printf "machine %s: %d states (minimum code length %d)\n\n" name n min_len;

  let sym = Symbolic.of_fsm machine in
  let ics = Constraints.of_symbolic sym in
  let groups = List.map (fun (ic : Constraints.input_constraint) -> ic.Constraints.states) ics in
  let sm = Symbmin.run sym in

  let iexact_entry =
    match Iexact.iexact_code ~num_states:n ~max_work:300_000 groups with
    | Iexact.Sat { k; codes; _ } -> [ ("iexact", Encoding.make ~nbits:k codes) ]
    | Iexact.Exhausted -> []
  in
  let entries =
    iexact_entry
    @ [
        ("ihybrid", (Ihybrid.ihybrid_code ~num_states:n ics).Ihybrid.encoding);
        ("igreedy", (Igreedy.igreedy_code ~num_states:n ics).Igreedy.encoding);
        ("iohybrid", (Iohybrid.iohybrid_code sm.Symbmin.problem).Iohybrid.encoding);
        ("iovariant", (Iohybrid.iovariant_code sm.Symbmin.problem).Iohybrid.encoding);
        ("kiss", Baselines.kiss_encode ~num_states:n ics);
        ( "mustang-nt",
          Baselines.mustang_encode machine ~flavor:Baselines.Fanout ~include_outputs:true
            ~nbits:min_len );
        ( "mustang-pt",
          Baselines.mustang_encode machine ~flavor:Baselines.Fanin ~include_outputs:true
            ~nbits:min_len );
        ("1-hot", Encoding.one_hot n);
        ( "random",
          Encoding.random (Random.State.make [| 13 |]) ~num_states:n ~nbits:min_len );
      ]
  in
  Printf.printf "%-11s %5s %7s %6s %7s %6s\n" "algorithm" "#bits" "#cubes" "area" "sat-IC"
    "#lit";
  List.iter
    (fun (label, e) ->
      let r = Encoded.implement machine e in
      let sat = Constraints.num_satisfied e ics in
      let net =
        Multilevel.of_cover r.Encoded.cover
          ~num_binary_vars:(machine.Fsm.num_inputs + e.Encoding.nbits)
      in
      let lits = Multilevel.factored_literals (Multilevel.optimize net) in
      Printf.printf "%-11s %5d %7d %6d %4d/%-2d %6d\n" label e.Encoding.nbits
        r.Encoded.num_cubes r.Encoded.area sat (List.length ics) lits)
    entries
