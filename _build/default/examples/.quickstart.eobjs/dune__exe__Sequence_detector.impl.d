examples/sequence_detector.ml: Array Bitvec Constraints Encoded Encoding Face Fsm Iexact Ihybrid Kiss List Printf String Symbolic Sys
