examples/quickstart.mli:
