examples/quickstart.ml: Array Bitvec Constraints Encoded Encoding Fsm Igreedy Ihybrid Iohybrid Kiss List Printf Random String Symbmin Symbolic
