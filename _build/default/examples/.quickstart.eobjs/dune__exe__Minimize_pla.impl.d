examples/minimize_pla.ml: Array Espresso Format Logic Pla Printf Sys
