examples/traffic_controller.mli:
