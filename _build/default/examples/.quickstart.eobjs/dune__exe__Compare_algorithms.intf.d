examples/compare_algorithms.mli:
