examples/sequence_detector.mli:
