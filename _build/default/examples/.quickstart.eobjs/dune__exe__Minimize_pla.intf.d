examples/minimize_pla.mli:
