examples/compare_algorithms.ml: Array Baselines Benchmarks Constraints Encoded Encoding Fsm Iexact Igreedy Ihybrid Iohybrid List Multilevel Printf Random Symbmin Symbolic Sys
