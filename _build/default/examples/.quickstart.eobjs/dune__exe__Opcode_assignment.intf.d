examples/opcode_assignment.mli:
