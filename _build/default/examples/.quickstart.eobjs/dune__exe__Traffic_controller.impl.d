examples/traffic_controller.ml: Array Constraints Encoded Encoding Fsm Igreedy Ihybrid Iohybrid Kiss List Printf Random String Symbmin Symbolic
