examples/opcode_assignment.ml: Array Bitvec Constraints Encoded Encoding Fsm Iexact Ihybrid List Printf Random String Symbolic
